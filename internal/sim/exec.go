// Execution handlers. ALU ops run as contiguous 32-lane slice loops
// over the block's struct-of-arrays register file, with operands
// pre-resolved at decode (decode.go). Fault modeling routes through a
// generic per-lane fallback (execLaneSlow) for ALU ops; memory and MMA
// handlers model their faults inline, keyed off engine.faultLane.
package sim

import (
	"math"

	"gpurel/internal/isa"
)

// exec functionally executes one warp-instruction over the active lanes.
// faultLane >= 0 selects the lane whose result the armed fault corrupts.
func (e *engine) exec(w *warpState, d *decoded, active uint32, faultLane int) {
	e.faultLane = faultLane
	if faultLane >= 0 && d.class == classALU {
		// The one warp-instruction of the run that carries an armed
		// ALU fault takes the reference per-lane path, which models
		// value, register-index, and predicate faults bit-exactly.
		in := d.in
		for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
			if active&bit == 0 {
				continue
			}
			e.execLaneSlow(w, in, w.base+lane, lane == faultLane)
		}
		return
	}
	d.run(e, w, d, active)
}

// --- fast handlers: contiguous SoA lane loops ---

func execNop(e *engine, w *warpState, d *decoded, active uint32) {}

func execMOV(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	if active == w.fullMask {
		copy(out, s0)
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = s0[lane]
		}
	}
}

func execSEL(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	pr := b.predRow(d.readsP, w.base, w.lanes)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := s1[lane]
		if pr[lane] {
			v = s0[lane]
		}
		out[lane] = v
	}
}

func execS2R(e *engine, w *warpState, d *decoded, active uint32) {
	out := d.dstRow(w.block, w)
	sr := d.in.SReg
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = e.special(w, w.base+lane, sr)
		}
	}
}

func execFADD(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	n0, n1 := d.src[0].fneg, d.src[1].fneg
	if active == w.fullMask {
		for lane := range out {
			v := math.Float32frombits(s0[lane]^n0) + math.Float32frombits(s1[lane]^n1)
			out[lane] = math.Float32bits(v)
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := math.Float32frombits(s0[lane]^n0) + math.Float32frombits(s1[lane]^n1)
		out[lane] = math.Float32bits(v)
	}
}

func execFMUL(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	n0, n1 := d.src[0].fneg, d.src[1].fneg
	if active == w.fullMask {
		for lane := range out {
			v := math.Float32frombits(s0[lane]^n0) * math.Float32frombits(s1[lane]^n1)
			out[lane] = math.Float32bits(v)
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := math.Float32frombits(s0[lane]^n0) * math.Float32frombits(s1[lane]^n1)
		out[lane] = math.Float32bits(v)
	}
}

func execFFMA(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	s2 := d.row(b, w, 2)
	n0, n1, n2 := d.src[0].fneg, d.src[1].fneg, d.src[2].fneg
	if active == w.fullMask {
		for lane := range out {
			v := float32(math.FMA(
				float64(math.Float32frombits(s0[lane]^n0)),
				float64(math.Float32frombits(s1[lane]^n1)),
				float64(math.Float32frombits(s2[lane]^n2))))
			out[lane] = math.Float32bits(v)
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := float32(math.FMA(
			float64(math.Float32frombits(s0[lane]^n0)),
			float64(math.Float32frombits(s1[lane]^n1)),
			float64(math.Float32frombits(s2[lane]^n2))))
		out[lane] = math.Float32bits(v)
	}
}

func (d *decoded) f64at(b *blockState, w *warpState, i, lane int) float64 {
	lo := d.row(b, w, i)[lane]
	hi := d.rowHi(b, w, i)[lane]
	return math.Float64frombits((uint64(lo) | uint64(hi)<<32) ^ d.src[i].fneg64)
}

func (d *decoded) writeF64(b *blockState, w *warpState, lane int, v uint64) {
	d.dstRow(b, w)[lane] = uint32(v)
	d.dstRowHi(b, w)[lane] = uint32(v >> 32)
}

func execDADD(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := d.f64at(b, w, 0, lane) + d.f64at(b, w, 1, lane)
		d.writeF64(b, w, lane, math.Float64bits(v))
	}
}

func execDMUL(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := d.f64at(b, w, 0, lane) * d.f64at(b, w, 1, lane)
		d.writeF64(b, w, lane, math.Float64bits(v))
	}
}

func execDFMA(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := math.FMA(d.f64at(b, w, 0, lane), d.f64at(b, w, 1, lane), d.f64at(b, w, 2, lane))
		d.writeF64(b, w, lane, math.Float64bits(v))
	}
}

// h16 widens a packed FP16 lane value and applies the post-conversion
// sign flip (matching the reference h16src semantics).
func h16(raw, fneg uint32) float32 {
	v := isa.F16ToF32(isa.Float16(raw & 0xffff))
	return math.Float32frombits(math.Float32bits(v) ^ fneg)
}

func execHADD(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	n0, n1 := d.src[0].fneg, d.src[1].fneg
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		out[lane] = uint32(isa.F32ToF16(h16(s0[lane], n0) + h16(s1[lane], n1)))
	}
}

func execHMUL(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	n0, n1 := d.src[0].fneg, d.src[1].fneg
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		out[lane] = uint32(isa.F32ToF16(h16(s0[lane], n0) * h16(s1[lane], n1)))
	}
}

func execHFMA(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	s2 := d.row(b, w, 2)
	n0, n1, n2 := d.src[0].fneg, d.src[1].fneg, d.src[2].fneg
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		v := float32(math.FMA(
			float64(h16(s0[lane], n0)),
			float64(h16(s1[lane], n1)),
			float64(h16(s2[lane], n2))))
		out[lane] = uint32(isa.F32ToF16(v))
	}
}

func execIADD(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	n0, n1 := d.src[0].ineg, d.src[1].ineg
	if active == w.fullMask && !n0 && !n1 {
		for lane := range out {
			out[lane] = uint32(int32(s0[lane]) + int32(s1[lane]))
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		a, c := int32(s0[lane]), int32(s1[lane])
		if n0 {
			a = -a
		}
		if n1 {
			c = -c
		}
		out[lane] = uint32(a + c)
	}
}

func execIMUL(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	n0, n1 := d.src[0].ineg, d.src[1].ineg
	if active == w.fullMask && !n0 && !n1 {
		for lane := range out {
			out[lane] = uint32(int32(s0[lane]) * int32(s1[lane]))
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		a, c := int32(s0[lane]), int32(s1[lane])
		if n0 {
			a = -a
		}
		if n1 {
			c = -c
		}
		out[lane] = uint32(a * c)
	}
}

func execIMAD(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	s2 := d.row(b, w, 2)
	n0, n1, n2 := d.src[0].ineg, d.src[1].ineg, d.src[2].ineg
	if active == w.fullMask && !n0 && !n1 && !n2 {
		for lane := range out {
			out[lane] = uint32(int32(s0[lane])*int32(s1[lane]) + int32(s2[lane]))
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		a, c, acc := int32(s0[lane]), int32(s1[lane]), int32(s2[lane])
		if n0 {
			a = -a
		}
		if n1 {
			c = -c
		}
		if n2 {
			acc = -acc
		}
		out[lane] = uint32(a*c + acc)
	}
}

func execIMNMX(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	wantLT := d.in.Cmp == isa.CmpLT
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		a, c := int32(s0[lane]), int32(s1[lane])
		v := a
		if wantLT == (c < a) {
			v = c
		}
		out[lane] = uint32(v)
	}
}

func execLOPAND(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = s0[lane] & s1[lane]
		}
	}
}

func execLOPOR(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = s0[lane] | s1[lane]
		}
	}
}

func execLOPXOR(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = s0[lane] ^ s1[lane]
		}
	}
}

func execSHFL(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = s0[lane] << (s1[lane] & 31)
		}
	}
}

func execSHFR(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = s0[lane] >> (s1[lane] & 31)
		}
	}
}

func execISETP(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	pr := b.predRow(d.in.DstP, w.base, w.lanes)
	cmp := d.in.Cmp
	if active == w.fullMask {
		for lane := range pr {
			pr[lane] = compareI(cmp, int32(s0[lane]), int32(s1[lane]))
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			pr[lane] = compareI(cmp, int32(s0[lane]), int32(s1[lane]))
		}
	}
}

func execFSETP(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	pr := b.predRow(d.in.DstP, w.base, w.lanes)
	cmp := d.in.Cmp
	if active == w.fullMask {
		for lane := range pr {
			pr[lane] = compareF(cmp,
				float64(math.Float32frombits(s0[lane])),
				float64(math.Float32frombits(s1[lane])))
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			pr[lane] = compareF(cmp,
				float64(math.Float32frombits(s0[lane])),
				float64(math.Float32frombits(s1[lane])))
		}
	}
}

func execDSETP(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	pr := b.predRow(d.in.DstP, w.base, w.lanes)
	cmp := d.in.Cmp
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			pr[lane] = compareF(cmp, d.f64at(b, w, 0, lane), d.f64at(b, w, 1, lane))
		}
	}
}

func execHSETP(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	s0 := d.row(b, w, 0)
	s1 := d.row(b, w, 1)
	pr := b.predRow(d.in.DstP, w.base, w.lanes)
	cmp := d.in.Cmp
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			pr[lane] = compareF(cmp, float64(h16(s0[lane], 0)), float64(h16(s1[lane], 0)))
		}
	}
}

func execF2F_32to64(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	s0 := d.row(b, w, 0)
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			v := float64(math.Float32frombits(s0[lane]))
			d.writeF64(b, w, lane, math.Float64bits(v))
		}
	}
}

func execF2F_64to32(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = math.Float32bits(float32(d.f64at(b, w, 0, lane)))
		}
	}
}

func execF2F_32to16(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = uint32(isa.F32ToF16(math.Float32frombits(s0[lane])))
		}
	}
}

func execF2F_16to32(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = math.Float32bits(h16(s0[lane], 0))
		}
	}
}

func execF2F_64to16(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = uint32(isa.F32ToF16(float32(d.f64at(b, w, 0, lane))))
		}
	}
}

func execF2F_16to64(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	s0 := d.row(b, w, 0)
	for lane, bit := 0, uint32(1); lane < w.lanes; lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			d.writeF64(b, w, lane, math.Float64bits(float64(h16(s0[lane], 0))))
		}
	}
}

func execF2FBad(e *engine, w *warpState, d *decoded, active uint32) {
	e.raiseDUE(DUEUnattributed, "unsupported F2F conversion %s->%s", d.in.CvtFrom, d.in.CvtTo)
}

func execF2I(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = uint32(clampI32(math.Float32frombits(s0[lane])))
		}
	}
}

func execI2F(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			out[lane] = math.Float32bits(float32(int32(s0[lane])))
		}
	}
}

func execMUFU(e *engine, w *warpState, d *decoded, active uint32) {
	b := w.block
	out := d.dstRow(b, w)
	s0 := d.row(b, w, 0)
	fn := d.in.Mufu
	for lane, bit := 0, uint32(1); lane < len(out); lane, bit = lane+1, bit<<1 {
		if active&bit != 0 {
			x := float64(math.Float32frombits(s0[lane]))
			out[lane] = math.Float32bits(float32(mufuEval(fn, x)))
		}
	}
}

func mufuEval(fn isa.MufuFunc, x float64) float64 {
	switch fn {
	case isa.MufuRCP:
		return 1 / x
	case isa.MufuSQRT:
		return math.Sqrt(x)
	case isa.MufuRSQ:
		return 1 / math.Sqrt(x)
	case isa.MufuEX2:
		return math.Exp2(x)
	case isa.MufuLG2:
		return math.Log2(x)
	case isa.MufuSIN:
		return math.Sin(x)
	case isa.MufuCOS:
		return math.Cos(x)
	}
	return 0
}

func execUnimplemented(e *engine, w *warpState, d *decoded, active uint32) {
	e.raiseDUE(DUEUnattributed, "unimplemented opcode %s", d.in.Op)
}

// --- memory handlers (fault modeling inline, keyed off e.faultLane) ---

func (e *engine) faultAddr(addr uint32) uint32 {
	// SASS addresses are 64-bit; the simulated arena lives in the low 32.
	// A flip in the high word always leaves the valid range, like a
	// strike pushing a pointer out of the VA space.
	if b := e.fault.Bit & 63; b >= 32 {
		return addr | 0x8000_0000
	} else {
		return addr ^ 1<<b
	}
}

func execLDG(e *engine, w *warpState, d *decoded, active uint32) {
	in := d.in
	b := w.block
	aRow := d.row(b, w, 0)
	off := in.Srcs[1].Imm
	fl := e.faultLane
	var dstLo, dstHi []uint32
	if in.Dst != isa.RZ {
		dstLo = b.regRow(in.Dst, w.base, w.lanes)
		if in.Wide {
			dstHi = b.regRow(in.Dst+1, w.base, w.lanes)
		}
	}
	if fl == noFault && !in.Wide && dstLo != nil && active == w.fullMask {
		// Full-warp unfaulted narrow load: lane order and the
		// fail-on-first-bad-address semantics are identical to the
		// masked loop below. Coalesced (unit-stride) warps collapse to
		// one ranged copy, broadcast (one-address) warps to one load.
		a0 := aRow[0] + off
		if n := len(aRow); n > 1 {
			switch aRow[1] - aRow[0] {
			case 4:
				coalesced := true
				for lane := 2; lane < n; lane++ {
					if aRow[lane]+off != a0+uint32(4*lane) {
						coalesced = false
						break
					}
				}
				if coalesced {
					if err := e.glob.LoadRow32(a0, dstLo); err != nil {
						e.raiseDUE(DUEIllegalAddress, "%s", err)
					}
					return
				}
			case 0:
				uniform := true
				for lane := 2; lane < n; lane++ {
					if aRow[lane] != aRow[0] {
						uniform = false
						break
					}
				}
				if uniform {
					v, err := e.glob.Load32(a0)
					if err != nil {
						e.raiseDUE(DUEIllegalAddress, "%s", err)
						return
					}
					for lane := range dstLo {
						dstLo[lane] = v
					}
					return
				}
			}
		}
		for lane := range aRow {
			v, err := e.glob.Load32(aRow[lane] + off)
			if err != nil {
				e.raiseDUE(DUEIllegalAddress, "%s", err)
				return
			}
			dstLo[lane] = v
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(aRow); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		addr := aRow[lane] + off
		faulted := lane == fl
		if faulted && e.fault.Kind == FaultAddrBit {
			addr = e.faultAddr(addr)
		}
		if in.Wide {
			lo, hi, err := e.glob.Load64(addr)
			if err != nil {
				e.raiseDUE(DUEIllegalAddress, "%s", err)
				return
			}
			if faulted {
				e.writeReg64(laneRegs{b, w.base + lane}, in.Dst, uint64(lo)|uint64(hi)<<32, true)
			} else if dstLo != nil {
				dstLo[lane], dstHi[lane] = lo, hi
			}
		} else {
			v, err := e.glob.Load32(addr)
			if err != nil {
				e.raiseDUE(DUEIllegalAddress, "%s", err)
				return
			}
			if faulted {
				e.writeReg(laneRegs{b, w.base + lane}, in.Dst, v, true)
			} else if dstLo != nil {
				dstLo[lane] = v
			}
		}
	}
}

func execLDS(e *engine, w *warpState, d *decoded, active uint32) {
	in := d.in
	b := w.block
	aRow := d.row(b, w, 0)
	off := in.Srcs[1].Imm
	fl := e.faultLane
	var dstLo, dstHi []uint32
	if in.Dst != isa.RZ {
		dstLo = b.regRow(in.Dst, w.base, w.lanes)
		if in.Wide {
			dstHi = b.regRow(in.Dst+1, w.base, w.lanes)
		}
	}
	for lane, bit := 0, uint32(1); lane < len(aRow); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		addr := aRow[lane] + off
		faulted := lane == fl
		if faulted && e.fault.Kind == FaultAddrBit {
			addr = e.faultAddr(addr)
		}
		if in.Wide {
			lo, hi, err := b.shared.Load64(addr)
			if err != nil {
				e.raiseDUE(DUEIllegalAddress, "%s", err)
				return
			}
			if faulted {
				e.writeReg64(laneRegs{b, w.base + lane}, in.Dst, uint64(lo)|uint64(hi)<<32, true)
			} else if dstLo != nil {
				dstLo[lane], dstHi[lane] = lo, hi
			}
		} else {
			v, err := b.shared.Load32(addr)
			if err != nil {
				e.raiseDUE(DUEIllegalAddress, "%s", err)
				return
			}
			if faulted {
				e.writeReg(laneRegs{b, w.base + lane}, in.Dst, v, true)
			} else if dstLo != nil {
				dstLo[lane] = v
			}
		}
	}
}

func execSTG(e *engine, w *warpState, d *decoded, active uint32) {
	in := d.in
	b := w.block
	aRow := d.row(b, w, 0)
	off := in.Srcs[1].Imm
	fl := e.faultLane
	vreg := in.Srcs[2].Reg
	var vLo, vHi []uint32
	if vreg != isa.RZ {
		vLo = b.regRow(vreg, w.base, w.lanes)
		if in.Wide {
			vHi = b.regRow(vreg+1, w.base, w.lanes)
		}
	}
	if fl == noFault && !in.Wide && vLo != nil && active == w.fullMask {
		// Coalesced full-warp store: one ranged copy, with the same
		// first-bad-address (and partial-write) semantics as the loop.
		a0 := aRow[0] + off
		if n := len(aRow); n > 1 && aRow[1]-aRow[0] == 4 {
			coalesced := true
			for lane := 2; lane < n; lane++ {
				if aRow[lane]+off != a0+uint32(4*lane) {
					coalesced = false
					break
				}
			}
			if coalesced {
				if err := e.glob.StoreRow32(a0, vLo); err != nil {
					e.raiseDUE(DUEIllegalAddress, "%s", err)
				}
				return
			}
		}
		for lane := range aRow {
			if err := e.glob.Store32(aRow[lane]+off, vLo[lane]); err != nil {
				e.raiseDUE(DUEIllegalAddress, "%s", err)
				return
			}
		}
		return
	}
	for lane, bit := 0, uint32(1); lane < len(aRow); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		addr := aRow[lane] + off
		faulted := lane == fl
		if faulted && e.fault.Kind == FaultAddrBit {
			addr = e.faultAddr(addr)
		}
		sv := uint32(0)
		if vLo != nil {
			sv = vLo[lane]
		}
		if faulted && e.fault.Kind == FaultValueBit {
			sv ^= 1 << (e.fault.Bit & 31)
			e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&31, 32
		}
		var err error
		if in.Wide {
			hi := uint32(0)
			if vHi != nil {
				hi = vHi[lane]
			}
			err = e.glob.Store64(addr, sv, hi)
		} else {
			err = e.glob.Store32(addr, sv)
		}
		if err != nil {
			e.raiseDUE(DUEIllegalAddress, "%s", err)
			return
		}
	}
}

func execSTS(e *engine, w *warpState, d *decoded, active uint32) {
	in := d.in
	b := w.block
	aRow := d.row(b, w, 0)
	off := in.Srcs[1].Imm
	fl := e.faultLane
	vreg := in.Srcs[2].Reg
	var vLo, vHi []uint32
	if vreg != isa.RZ {
		vLo = b.regRow(vreg, w.base, w.lanes)
		if in.Wide {
			vHi = b.regRow(vreg+1, w.base, w.lanes)
		}
	}
	for lane, bit := 0, uint32(1); lane < len(aRow); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		addr := aRow[lane] + off
		faulted := lane == fl
		if faulted && e.fault.Kind == FaultAddrBit {
			addr = e.faultAddr(addr)
		}
		sv := uint32(0)
		if vLo != nil {
			sv = vLo[lane]
		}
		if faulted && e.fault.Kind == FaultValueBit {
			sv ^= 1 << (e.fault.Bit & 31)
			e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&31, 32
		}
		var err error
		if in.Wide {
			hi := uint32(0)
			if vHi != nil {
				hi = vHi[lane]
			}
			err = b.shared.Store64(addr, sv, hi)
		} else {
			err = b.shared.Store32(addr, sv)
		}
		if err != nil {
			e.raiseDUE(DUEIllegalAddress, "%s", err)
			return
		}
	}
}

func execRED(e *engine, w *warpState, d *decoded, active uint32) {
	in := d.in
	b := w.block
	aRow := d.row(b, w, 0)
	off := in.Srcs[1].Imm
	fl := e.faultLane
	vreg := in.Srcs[2].Reg
	var vRow []uint32
	if vreg != isa.RZ {
		vRow = b.regRow(vreg, w.base, w.lanes)
	}
	for lane, bit := 0, uint32(1); lane < len(aRow); lane, bit = lane+1, bit<<1 {
		if active&bit == 0 {
			continue
		}
		addr := aRow[lane] + off
		if lane == fl && e.fault.Kind == FaultAddrBit {
			addr = e.faultAddr(addr)
		}
		sv := uint32(0)
		if vRow != nil {
			sv = vRow[lane]
		}
		if _, err := e.glob.AtomicAdd32(addr, sv); err != nil {
			e.raiseDUE(DUEIllegalAddress, "%s", err)
			return
		}
	}
}

// MMA fragment layout (16x16 tiles distributed over 32 lanes):
// element (i,j), flat = i*16+j:
//
//	A/B half fragments: lane = flat/8, slot = flat%8, register = base +
//	  slot/2, half = slot%2 (low/high 16 bits);
//	FP32 fragments (FMMA inputs and all accumulators): lane = flat/8,
//	  register = base + flat%8.
func execMMA(e *engine, w *warpState, d *decoded, active uint32) {
	in := d.in
	if active != w.fullMask || w.fullMask != ^uint32(0) {
		e.raiseDUE(DUESyncError, "MMA issued by divergent or partial warp")
		return
	}
	blk := w.block
	base := w.base
	faultLane := e.faultLane
	regAt := func(lane int, r isa.Reg) uint32 { return blk.regs[int(r)*blk.threads+base+lane] }

	var a, b [16][16]float32
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			flat := i*16 + j
			lane, slot := flat/8, flat%8
			if in.Op == isa.OpHMMA {
				av := regAt(lane, in.Srcs[0].Reg+isa.Reg(slot/2))
				bv := regAt(lane, in.Srcs[1].Reg+isa.Reg(slot/2))
				sh := uint32(slot%2) * 16
				a[i][j] = isa.F16ToF32(isa.Float16(av >> sh & 0xffff))
				b[i][j] = isa.F16ToF32(isa.Float16(bv >> sh & 0xffff))
			} else {
				// FMMA: FP32 fragments cast to FP16 on the tensor core.
				av := math.Float32frombits(regAt(lane, in.Srcs[0].Reg+isa.Reg(slot)))
				bv := math.Float32frombits(regAt(lane, in.Srcs[1].Reg+isa.Reg(slot)))
				a[i][j] = isa.F16ToF32(isa.F32ToF16(av))
				b[i][j] = isa.F16ToF32(isa.F32ToF16(bv))
			}
		}
	}
	// D = A*B + C with FP32 accumulation.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			flat := i*16 + j
			lane, slot := flat/8, flat%8
			acc := math.Float32frombits(regAt(lane, in.Srcs[2].Reg+isa.Reg(slot)))
			for k := 0; k < 16; k++ {
				acc += a[i][k] * b[k][j]
			}
			out := math.Float32bits(acc)
			if lane == faultLane && e.fault != nil && e.fault.Kind == FaultValueBit &&
				slot == e.fault.Bit/32%8 {
				out ^= 1 << (e.fault.Bit & 31)
				// Bit is drawn from [0,64), so the flip lands in the
				// first two fragment slots: a 64-bit window.
				e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&63, 64
			}
			blk.regs[int(in.Dst+isa.Reg(slot))*blk.threads+base+lane] = out
		}
	}
}

// --- generic per-lane fallback (reference semantics, fault modeling) ---

// laneRegs is a single-lane view of the SoA register file, used by the
// per-lane fallback and by the fault paths of the memory handlers.
type laneRegs struct {
	b *blockState
	t int
}

func (lr laneRegs) get(r isa.Reg) uint32    { return lr.b.regs[int(r)*lr.b.threads+lr.t] }
func (lr laneRegs) set(r isa.Reg, v uint32) { lr.b.regs[int(r)*lr.b.threads+lr.t] = v }
func (lr laneRegs) getP(p isa.PredReg) bool { return lr.b.preds[int(p)*lr.b.threads+lr.t] }
func (lr laneRegs) setP(p isa.PredReg, v bool) {
	lr.b.preds[int(p)*lr.b.threads+lr.t] = v
}

// src reads a 32-bit source operand for a lane.
func src(lr laneRegs, o isa.Operand) uint32 {
	if o.IsImm {
		return o.Imm
	}
	if o.Reg == isa.RZ {
		return 0
	}
	return lr.get(o.Reg)
}

func src64(lr laneRegs, o isa.Operand) uint64 {
	if o.IsImm {
		return uint64(o.Imm)
	}
	if o.Reg == isa.RZ {
		return 0
	}
	return uint64(lr.get(o.Reg)) | uint64(lr.get(o.Reg+1))<<32
}

func f32src(lr laneRegs, o isa.Operand, neg bool) float32 {
	v := math.Float32frombits(src(lr, o))
	if neg {
		return -v
	}
	return v
}

func f64src(lr laneRegs, o isa.Operand, neg bool) float64 {
	v := math.Float64frombits(src64(lr, o))
	if neg {
		return -v
	}
	return v
}

func h16src(lr laneRegs, o isa.Operand, neg bool) float32 {
	v := isa.F16ToF32(isa.Float16(src(lr, o) & 0xffff))
	if neg {
		return -v
	}
	return v
}

func isrc(lr laneRegs, o isa.Operand, neg bool) int32 {
	v := int32(src(lr, o))
	if neg {
		return -v
	}
	return v
}

// writeReg writes a 32-bit destination, applying a value-bit or
// register-index fault when this lane is the fault target.
func (e *engine) writeReg(lr laneRegs, dst isa.Reg, v uint32, faulted bool) {
	if faulted && e.fault != nil {
		switch e.fault.Kind {
		case FaultValueBit:
			v ^= 1 << (e.fault.Bit & 31)
			e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&31, 32
		case FaultRegIndex:
			// The result lands in a corrupted destination register.
			alt := (int(dst) ^ (1 << (e.fault.Bit % 5))) % lr.b.nregs
			if isa.Reg(alt) != isa.RZ {
				lr.set(isa.Reg(alt), v)
			}
			return
		}
	}
	if dst != isa.RZ {
		lr.set(dst, v)
	}
}

func (e *engine) writeReg64(lr laneRegs, dst isa.Reg, v uint64, faulted bool) {
	if faulted && e.fault != nil && e.fault.Kind == FaultValueBit {
		v ^= 1 << (e.fault.Bit & 63)
		e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&63, 64
	}
	lr.set(dst, uint32(v))
	lr.set(dst+1, uint32(v>>32))
}

// writePred writes a SETP result, modeling predicate-register faults.
func (e *engine) writePred(lr laneRegs, in *isa.Instr, v bool, faulted bool) {
	if faulted && e.fault != nil && e.fault.Kind == FaultPredBit {
		v = !v
	}
	if in.DstP != isa.PT {
		lr.setP(in.DstP, v)
	}
}

// execLaneSlow executes one generic (non-memory, non-MMA) op for one
// lane with reference semantics, modeling the armed fault exactly.
func (e *engine) execLaneSlow(w *warpState, in *isa.Instr, t int, faulted bool) {
	lr := laneRegs{w.block, t}
	switch in.Op {
	case isa.OpNOP:

	case isa.OpMOV, isa.OpMOV32I:
		e.writeReg(lr, in.Dst, src(lr, in.Srcs[0]), faulted)

	case isa.OpSEL:
		v := src(lr, in.Srcs[1])
		if lr.getP(in.DstP) {
			v = src(lr, in.Srcs[0])
		}
		e.writeReg(lr, in.Dst, v, faulted)

	case isa.OpS2R:
		e.writeReg(lr, in.Dst, e.special(w, t, in.SReg), faulted)

	case isa.OpFADD:
		v := f32src(lr, in.Srcs[0], in.Neg[0]) + f32src(lr, in.Srcs[1], in.Neg[1])
		e.writeReg(lr, in.Dst, math.Float32bits(v), faulted)
	case isa.OpFMUL:
		v := f32src(lr, in.Srcs[0], in.Neg[0]) * f32src(lr, in.Srcs[1], in.Neg[1])
		e.writeReg(lr, in.Dst, math.Float32bits(v), faulted)
	case isa.OpFFMA:
		v := float32(math.FMA(
			float64(f32src(lr, in.Srcs[0], in.Neg[0])),
			float64(f32src(lr, in.Srcs[1], in.Neg[1])),
			float64(f32src(lr, in.Srcs[2], in.Neg[2]))))
		e.writeReg(lr, in.Dst, math.Float32bits(v), faulted)

	case isa.OpDADD:
		v := f64src(lr, in.Srcs[0], in.Neg[0]) + f64src(lr, in.Srcs[1], in.Neg[1])
		e.writeReg64(lr, in.Dst, math.Float64bits(v), faulted)
	case isa.OpDMUL:
		v := f64src(lr, in.Srcs[0], in.Neg[0]) * f64src(lr, in.Srcs[1], in.Neg[1])
		e.writeReg64(lr, in.Dst, math.Float64bits(v), faulted)
	case isa.OpDFMA:
		v := math.FMA(
			f64src(lr, in.Srcs[0], in.Neg[0]),
			f64src(lr, in.Srcs[1], in.Neg[1]),
			f64src(lr, in.Srcs[2], in.Neg[2]))
		e.writeReg64(lr, in.Dst, math.Float64bits(v), faulted)

	case isa.OpHADD:
		v := h16src(lr, in.Srcs[0], in.Neg[0]) + h16src(lr, in.Srcs[1], in.Neg[1])
		e.writeReg(lr, in.Dst, uint32(isa.F32ToF16(v)), faulted)
	case isa.OpHMUL:
		v := h16src(lr, in.Srcs[0], in.Neg[0]) * h16src(lr, in.Srcs[1], in.Neg[1])
		e.writeReg(lr, in.Dst, uint32(isa.F32ToF16(v)), faulted)
	case isa.OpHFMA:
		v := float32(math.FMA(
			float64(h16src(lr, in.Srcs[0], in.Neg[0])),
			float64(h16src(lr, in.Srcs[1], in.Neg[1])),
			float64(h16src(lr, in.Srcs[2], in.Neg[2]))))
		e.writeReg(lr, in.Dst, uint32(isa.F32ToF16(v)), faulted)

	case isa.OpIADD:
		v := isrc(lr, in.Srcs[0], in.Neg[0]) + isrc(lr, in.Srcs[1], in.Neg[1])
		e.writeReg(lr, in.Dst, uint32(v), faulted)
	case isa.OpIMUL:
		v := isrc(lr, in.Srcs[0], in.Neg[0]) * isrc(lr, in.Srcs[1], in.Neg[1])
		e.writeReg(lr, in.Dst, uint32(v), faulted)
	case isa.OpIMAD:
		v := isrc(lr, in.Srcs[0], in.Neg[0])*isrc(lr, in.Srcs[1], in.Neg[1]) +
			isrc(lr, in.Srcs[2], in.Neg[2])
		e.writeReg(lr, in.Dst, uint32(v), faulted)
	case isa.OpIMNMX:
		a, b := isrc(lr, in.Srcs[0], false), isrc(lr, in.Srcs[1], false)
		v := a
		if (in.Cmp == isa.CmpLT) == (b < a) {
			v = b
		}
		e.writeReg(lr, in.Dst, uint32(v), faulted)
	case isa.OpLOP:
		a, b := src(lr, in.Srcs[0]), src(lr, in.Srcs[1])
		var v uint32
		switch in.Logic {
		case isa.LopAND:
			v = a & b
		case isa.LopOR:
			v = a | b
		case isa.LopXOR:
			v = a ^ b
		}
		e.writeReg(lr, in.Dst, v, faulted)
	case isa.OpSHF:
		a, b := src(lr, in.Srcs[0]), src(lr, in.Srcs[1])&31
		var v uint32
		if in.Shift == isa.ShiftL {
			v = a << b
		} else {
			v = a >> b
		}
		e.writeReg(lr, in.Dst, v, faulted)

	case isa.OpISETP:
		a, b := isrc(lr, in.Srcs[0], false), isrc(lr, in.Srcs[1], false)
		e.writePred(lr, in, compareI(in.Cmp, a, b), faulted)
	case isa.OpFSETP:
		e.writePred(lr, in, compareF(in.Cmp,
			float64(f32src(lr, in.Srcs[0], false)), float64(f32src(lr, in.Srcs[1], false))), faulted)
	case isa.OpDSETP:
		e.writePred(lr, in, compareF(in.Cmp,
			f64src(lr, in.Srcs[0], false), f64src(lr, in.Srcs[1], false)), faulted)
	case isa.OpHSETP:
		e.writePred(lr, in, compareF(in.Cmp,
			float64(h16src(lr, in.Srcs[0], false)), float64(h16src(lr, in.Srcs[1], false))), faulted)

	case isa.OpF2F:
		e.convertF2F(lr, in, faulted)
	case isa.OpF2I:
		f := f32src(lr, in.Srcs[0], false)
		e.writeReg(lr, in.Dst, uint32(clampI32(f)), faulted)
	case isa.OpI2F:
		v := float32(isrc(lr, in.Srcs[0], false))
		e.writeReg(lr, in.Dst, math.Float32bits(v), faulted)

	case isa.OpMUFU:
		x := float64(f32src(lr, in.Srcs[0], false))
		e.writeReg(lr, in.Dst, math.Float32bits(float32(mufuEval(in.Mufu, x))), faulted)

	default:
		e.raiseDUE(DUEUnattributed, "unimplemented opcode %s", in.Op)
	}
}

func compareI(c isa.CmpOp, a, b int32) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpGE:
		return a >= b
	default:
		return a > b
	}
}

func compareF(c isa.CmpOp, a, b float64) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpGE:
		return a >= b
	default:
		return a > b
	}
}

func clampI32(f float32) int32 {
	switch {
	case f != f: // NaN
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(f)
	}
}

func (e *engine) convertF2F(lr laneRegs, in *isa.Instr, faulted bool) {
	switch {
	case in.CvtFrom == isa.F32 && in.CvtTo == isa.F64:
		v := float64(f32src(lr, in.Srcs[0], false))
		e.writeReg64(lr, in.Dst, math.Float64bits(v), faulted)
	case in.CvtFrom == isa.F64 && in.CvtTo == isa.F32:
		v := float32(f64src(lr, in.Srcs[0], false))
		e.writeReg(lr, in.Dst, math.Float32bits(v), faulted)
	case in.CvtFrom == isa.F32 && in.CvtTo == isa.F16:
		e.writeReg(lr, in.Dst, uint32(isa.F32ToF16(f32src(lr, in.Srcs[0], false))), faulted)
	case in.CvtFrom == isa.F16 && in.CvtTo == isa.F32:
		e.writeReg(lr, in.Dst, math.Float32bits(h16src(lr, in.Srcs[0], false)), faulted)
	case in.CvtFrom == isa.F64 && in.CvtTo == isa.F16:
		e.writeReg(lr, in.Dst, uint32(isa.F32ToF16(float32(f64src(lr, in.Srcs[0], false)))), faulted)
	case in.CvtFrom == isa.F16 && in.CvtTo == isa.F64:
		e.writeReg64(lr, in.Dst, math.Float64bits(float64(h16src(lr, in.Srcs[0], false))), faulted)
	default:
		e.raiseDUE(DUEUnattributed, "unsupported F2F conversion %s->%s", in.CvtFrom, in.CvtTo)
	}
}

func (e *engine) special(w *warpState, t int, sr isa.SpecialReg) uint32 {
	blk := w.block
	switch sr {
	case isa.SrTidX:
		return uint32(t)
	case isa.SrTidY:
		return 0
	case isa.SrCtaidX:
		return uint32(blk.ctaX)
	case isa.SrCtaidY:
		return uint32(blk.ctaY)
	case isa.SrNtidX:
		return uint32(blk.threads)
	case isa.SrNtidY:
		return 1
	case isa.SrNctaidX:
		return uint32(e.cfg.GridX)
	case isa.SrNctaidY:
		return uint32(e.cfg.GridY)
	case isa.SrLaneID:
		return uint32(t % 32)
	case isa.SrWarpID:
		return uint32(w.widx)
	default:
		return 0
	}
}
