// Sub-launch checkpointing: the golden run records full-state images of
// the engine every N lane-operations, and a faulted replay (a) starts
// from the latest image that provably precedes its trigger instead of
// the launch start, and (b) once its fault has fired, compares itself
// against the golden image captured at the same cycle and stops as soon
// as it matches — the sub-launch generalization of the launch-boundary
// early-Masked cutoff.
//
// Both directions are exact, not heuristic. The engine is deterministic,
// so a replay whose entire future-relevant state (register file,
// predicates, shared and global memory, divergence stacks, scoreboard,
// scheduler cursors, residency lists) equals the golden image at the
// same cycle replays the golden suffix bit for bit. Image selection is
// clock-safe: an image is a valid start only if the fault's trigger
// clock at capture time had not yet reached the trigger, which the
// image's lane-op count (storage faults) or per-op counts (filtered op
// faults) decide without approximation.
package sim

import (
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// warpImage is the frozen state of one warp.
type warpImage struct {
	stack         []simtEntry
	exited        uint32
	atBar         bool
	pendingReconv int32
	regReady      []int64
	predReady     [8]int64
	done          bool
}

// blockImage is the frozen state of one resident CTA, warps included
// (indexed by warp index within the block).
type blockImage struct {
	cta        int
	ctaX, ctaY int
	threads    int
	nregs      int

	regs   []uint32
	preds  []bool
	shared []uint32

	liveWarps  int
	barWaiting int
	warps      []warpImage
}

// warpRef names a warp by resident block (index into LaunchImage.blocks)
// and warp index, preserving the SM residency order.
type warpRef struct {
	block int
	widx  int
}

// smImage is the frozen scheduler state of one SM.
type smImage struct {
	lastPick  []int
	liveWarps int
	warps     []warpRef
}

// LaunchImage is a full mid-launch state image captured during a golden
// run. Mem is the global-memory snapshot at capture time; Cycle and
// LaneOps place the image on the launch's timing and trigger clocks.
type LaunchImage struct {
	Cycle   int64
	LaneOps uint64
	Mem     *mem.Snapshot

	perOpLane        [isa.OpCount]uint64
	warpInstrs       uint64
	activeWarpCycles uint64
	smCycles         uint64
	smsUsed          int
	ctrlOps          uint64
	loadResidency    uint64
	divResidency     uint64

	nextBlock  int
	liveBlocks int
	blocks     []blockImage
	sms        []smImage
}

// FilteredOps reconstructs the filtered lane-op trigger clock at capture
// time for an arbitrary plan filter. The golden run records no filtered
// count of its own (it has no fault plan), but the per-op totals
// determine it exactly: the filtered clock advances by every non-control
// lane-op whose opcode passes the filter.
func (img *LaunchImage) FilteredOps(filter func(op isa.Op) bool) uint64 {
	var n uint64
	for op := 0; op < isa.OpCount; op++ {
		o := isa.Op(op)
		if o.IsControl() {
			continue
		}
		if filter == nil || filter(o) {
			n += img.perOpLane[op]
		}
	}
	return n
}

// FootprintBytes approximates the image's retained memory: the global
// snapshot dominates, and the frozen block/SM state rides within the
// same 64 KiB allowance the Runner's recording budget charges per image
// (kernels.NewRunner divides its budget by snapshot size + 64 KiB).
func (img *LaunchImage) FootprintBytes() int {
	return img.Mem.SizeBytes() + 64*1024
}

// PickImage returns the latest image whose trigger clock had not yet
// reached the plan's trigger at capture time — the furthest point the
// replay can start from without missing its own fault — or nil when no
// image precedes the trigger (the replay must start at the launch
// boundary). Storage faults trigger on the unfiltered lane-op clock;
// operation faults on the plan's filtered clock.
func PickImage(images []*LaunchImage, plan *FaultPlan) *LaunchImage {
	var best *LaunchImage
	for _, img := range images {
		var clock uint64
		switch plan.Kind {
		case FaultRFBit, FaultSharedBit, FaultGlobalBit:
			clock = img.LaneOps
		default:
			clock = img.FilteredOps(plan.Filter)
		}
		if clock <= plan.TriggerIndex {
			best = img
		}
	}
	return best
}

// ImageRecorder accumulates golden images during an instrumented run.
// When the image count exceeds MaxImages, every other image is dropped
// and the interval doubles, so arbitrarily long launches keep a bounded
// set of images at self-scaling spacing.
type ImageRecorder struct {
	Interval  uint64 // lane-ops between images
	MaxImages int
	Images    []*LaunchImage

	nextAt uint64
}

// DefaultImageInterval and DefaultMaxImages bound the recorder: 24
// images every 32768 lane-ops, thinning beyond.
const (
	DefaultImageInterval = 32768
	DefaultMaxImages     = 24
)

// NewImageRecorder returns a recorder with the given spacing; zero
// values select the defaults.
func NewImageRecorder(interval uint64, maxImages int) *ImageRecorder {
	if interval == 0 {
		interval = DefaultImageInterval
	}
	if maxImages <= 0 {
		maxImages = DefaultMaxImages
	}
	return &ImageRecorder{Interval: interval, MaxImages: maxImages, nextAt: interval}
}

func (r *ImageRecorder) add(img *LaunchImage) {
	r.Images = append(r.Images, img)
	r.nextAt = img.LaneOps + r.Interval
	if len(r.Images) > r.MaxImages {
		kept := r.Images[:0]
		for i, im := range r.Images {
			if i%2 == 0 {
				kept = append(kept, im)
			}
		}
		for i := len(kept); i < len(r.Images); i++ {
			r.Images[i] = nil
		}
		r.Images = kept
		r.Interval *= 2
		r.nextAt = r.Images[len(r.Images)-1].LaneOps + r.Interval
	}
}

// capture freezes the engine's full state into a LaunchImage. Blocks are
// enumerated in SM residency order (first appearance), which the match
// path reproduces, so block indices are comparable across runs.
func (e *engine) capture() *LaunchImage {
	img := &LaunchImage{
		Cycle:            e.cycle,
		LaneOps:          e.laneOps,
		Mem:              e.glob.Snapshot(),
		perOpLane:        e.perOpLane,
		warpInstrs:       e.warpInstrs,
		activeWarpCycles: e.activeWarpCycles,
		smCycles:         e.smCycles,
		smsUsed:          e.smsUsed,
		ctrlOps:          e.ctrlOps,
		loadResidency:    e.loadResidency,
		divResidency:     e.divResidency,
		nextBlock:        e.nextBlock,
		liveBlocks:       e.liveBlocks,
		sms:              make([]smImage, len(e.sms)),
	}
	idx := make(map[*blockState]int)
	for s := range e.sms {
		sm := &e.sms[s]
		si := &img.sms[s]
		si.lastPick = append([]int(nil), sm.lastPick...)
		si.liveWarps = sm.liveWarps
		si.warps = make([]warpRef, len(sm.warps))
		for j, w := range sm.warps {
			bi, ok := idx[w.block]
			if !ok {
				bi = len(img.blocks)
				idx[w.block] = bi
				img.blocks = append(img.blocks, captureBlock(w.block))
			}
			si.warps[j] = warpRef{block: bi, widx: w.widx}
		}
	}
	return img
}

func captureBlock(b *blockState) blockImage {
	bi := blockImage{
		cta:        b.cta,
		ctaX:       b.ctaX,
		ctaY:       b.ctaY,
		threads:    b.threads,
		nregs:      b.nregs,
		regs:       append([]uint32(nil), b.regs...),
		preds:      append([]bool(nil), b.preds...),
		shared:     b.shared.SnapshotWords(),
		liveWarps:  b.liveWarps,
		barWaiting: b.barWaiting,
		warps:      make([]warpImage, len(b.warps)),
	}
	for i, w := range b.warps {
		bi.warps[i] = warpImage{
			stack:         append([]simtEntry(nil), w.stack...),
			exited:        w.exited,
			atBar:         w.atBar,
			pendingReconv: w.pendingReconv,
			regReady:      append([]int64(nil), w.regReady...),
			predReady:     w.predReady,
			done:          w.done,
		}
	}
	return bi
}

// restoreImage rewinds a freshly constructed engine (no blocks launched)
// to the image's state, including global memory and the trigger clocks.
func (e *engine) restoreImage(img *LaunchImage) {
	e.cycle = img.Cycle
	e.laneOps = img.LaneOps
	e.perOpLane = img.perOpLane
	e.warpInstrs = img.warpInstrs
	e.activeWarpCycles = img.activeWarpCycles
	e.smCycles = img.smCycles
	e.smsUsed = img.smsUsed
	e.ctrlOps = img.ctrlOps
	e.loadResidency = img.loadResidency
	e.divResidency = img.divResidency
	e.nextBlock = img.nextBlock
	e.liveBlocks = img.liveBlocks
	e.restored = true
	if e.fault != nil {
		e.filteredOps = img.FilteredOps(e.fault.Filter)
	}
	e.glob.Restore(img.Mem)

	blocks := make([]*blockState, len(img.blocks))
	for i := range img.blocks {
		blocks[i] = materializeBlock(&img.blocks[i], e.prog.SharedMem)
	}
	e.sms = make([]smState, len(img.sms))
	for s := range img.sms {
		si := &img.sms[s]
		sm := &e.sms[s]
		sm.lastPick = append([]int(nil), si.lastPick...)
		// Scheduling caches restart cold: they are performance state,
		// not architectural state, so images never carry them.
		sm.schedQuiet = make([]int64, len(si.lastPick))
		sm.liveWarps = si.liveWarps
		sm.warps = make([]*warpState, len(si.warps))
		for j, ref := range si.warps {
			sm.warps[j] = blocks[ref.block].warps[ref.widx]
		}
	}
	// Skip golden images the restored state already passed.
	for e.gIdx < len(e.golden) && e.golden[e.gIdx].Cycle <= img.Cycle {
		e.gIdx++
	}
}

func materializeBlock(bi *blockImage, sharedMem int) *blockState {
	blk := &blockState{
		cta:        bi.cta,
		ctaX:       bi.ctaX,
		ctaY:       bi.ctaY,
		threads:    bi.threads,
		nregs:      bi.nregs,
		regs:       append([]uint32(nil), bi.regs...),
		preds:      append([]bool(nil), bi.preds...),
		shared:     mem.NewShared(sharedMem),
		liveWarps:  bi.liveWarps,
		barWaiting: bi.barWaiting,
	}
	blk.shared.RestoreWords(bi.shared)
	nwarps := len(bi.warps)
	for wi := range bi.warps {
		w := &bi.warps[wi]
		lanes := 32
		if wi == nwarps-1 && bi.threads%32 != 0 {
			lanes = bi.threads % 32
		}
		full := uint32(1)<<lanes - 1
		if lanes == 32 {
			full = ^uint32(0)
		}
		ws := &warpState{
			block:         blk,
			widx:          wi,
			base:          wi * 32,
			lanes:         lanes,
			fullMask:      full,
			stack:         append([]simtEntry(nil), w.stack...),
			exited:        w.exited,
			atBar:         w.atBar,
			pendingReconv: w.pendingReconv,
			regReady:      append([]int64(nil), w.regReady...),
			predReady:     w.predReady,
			done:          w.done,
		}
		// maxStamp is derived state; rebuild it from the stamps so the
		// restored warp regains the readiness quick-pass.
		for _, t := range ws.regReady {
			if t > ws.maxStamp {
				ws.maxStamp = t
			}
		}
		for _, t := range ws.predReady {
			if t > ws.maxStamp {
				ws.maxStamp = t
			}
		}
		blk.warps = append(blk.warps, ws)
	}
	return blk
}

// tryRejoin advances past golden images the replay has outrun and, when
// an image was captured at exactly this cycle, compares the replay's
// full state against it; a match means the remaining execution replays
// the golden run bit for bit, so the engine stops with RejoinedGolden.
// It returns true when the run should stop.
func (e *engine) tryRejoin() bool {
	for e.gIdx < len(e.golden) && e.golden[e.gIdx].Cycle < e.cycle {
		e.gIdx++
	}
	if e.gIdx >= len(e.golden) || e.golden[e.gIdx].Cycle != e.cycle {
		return false
	}
	img := e.golden[e.gIdx]
	e.gIdx++
	if e.matchesImage(img) {
		e.rejoined = true
		return true
	}
	return false
}

// stampEquiv compares two scoreboard stamps for future-equivalence at
// the current cycle: stamps in the past never influence scheduling
// again, so any two of them are interchangeable.
func stampEquiv(a, b, now int64) bool {
	return a == b || (a <= now && b <= now)
}

// matchesImage reports whether the replay's entire future-relevant state
// equals the golden image. Profile counters are deliberately excluded:
// once the fault has fired, the trigger clocks are inert (armFault
// short-circuits on Fired) and counters do not influence execution.
func (e *engine) matchesImage(img *LaunchImage) bool {
	if e.nextBlock != img.nextBlock || e.liveBlocks != img.liveBlocks ||
		len(e.sms) != len(img.sms) {
		return false
	}
	now := e.cycle
	// Index blocks by first-encounter order, exactly as capture() did;
	// a block's warps sit contiguously in its SM's list, so the
	// last-block check resolves almost every warp and the linear
	// fallback keeps the assignment exact regardless. Each block's
	// state is compared at first encounter: a faulted block that
	// diverged (the common mismatch) fails the whole compare before
	// the remaining topology, blocks, or memory are walked. The
	// scratch slice lives on the engine — compares run per crossed
	// image, and a map here was measurable in replay profiles.
	blocks := e.blkScratch[:0]
	defer func() { e.blkScratch = blocks }()
	for s := range e.sms {
		sm := &e.sms[s]
		si := &img.sms[s]
		if sm.liveWarps != si.liveWarps || len(sm.warps) != len(si.warps) ||
			len(sm.lastPick) != len(si.lastPick) {
			return false
		}
		for k := range sm.lastPick {
			if sm.lastPick[k] != si.lastPick[k] {
				return false
			}
		}
		for j, w := range sm.warps {
			bi := -1
			if n := len(blocks); n > 0 && blocks[n-1] == w.block {
				bi = n - 1
			} else {
				for k := range blocks {
					if blocks[k] == w.block {
						bi = k
						break
					}
				}
				if bi == -1 {
					bi = len(blocks)
					if bi >= len(img.blocks) {
						return false
					}
					blocks = append(blocks, w.block)
					if !w.block.equalImage(&img.blocks[bi], now) {
						return false
					}
				}
			}
			if si.warps[j] != (warpRef{block: bi, widx: w.widx}) {
				return false
			}
		}
	}
	if len(blocks) != len(img.blocks) {
		return false
	}
	// Global memory last: it is the largest compare by far.
	return e.glob.EqualSnapshot(img.Mem)
}

func (b *blockState) equalImage(bi *blockImage, now int64) bool {
	if b.cta != bi.cta || b.threads != bi.threads || b.nregs != bi.nregs ||
		b.liveWarps != bi.liveWarps || b.barWaiting != bi.barWaiting ||
		len(b.warps) != len(bi.warps) {
		return false
	}
	for wi := range b.warps {
		w, img := b.warps[wi], &bi.warps[wi]
		if w.exited != img.exited || w.atBar != img.atBar ||
			w.pendingReconv != img.pendingReconv || w.done != img.done ||
			len(w.stack) != len(img.stack) {
			return false
		}
		for k := range w.stack {
			if w.stack[k] != img.stack[k] {
				return false
			}
		}
		for r := range w.regReady {
			if !stampEquiv(w.regReady[r], img.regReady[r], now) {
				return false
			}
		}
		for p := range w.predReady {
			if !stampEquiv(w.predReady[p], img.predReady[p], now) {
				return false
			}
		}
	}
	for i := range b.regs {
		if b.regs[i] != bi.regs[i] {
			return false
		}
	}
	for i := range b.preds {
		if b.preds[i] != bi.preds[i] {
			return false
		}
	}
	return b.shared.EqualWords(bi.shared)
}
