package sim

import (
	"math"
	"reflect"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// runSampled runs a program with timeline sampling on and returns the
// profile.
func runSampled(t *testing.T, prog *isa.Program, grid, block int) Profile {
	t.Helper()
	g := mem.NewGlobal(1 << 20)
	res, err := Run(Config{
		Device: device.K40c(), Program: prog,
		GridX: grid, GridY: 1, BlockThreads: block,
		SampleTimeline: true,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeOK {
		t.Fatalf("run failed: %s", res.DUEReason)
	}
	return res.Profile
}

// buildSpin builds a trip-count loop long enough to force bucket folds.
func buildSpin(t *testing.T, trips int32) *isa.Program {
	t.Helper()
	b := asm.New("spin", asm.O1)
	i := b.R()
	p := b.P()
	b.MovImm(i, 0)
	b.Label("loop")
	b.IAdd(i, isa.R(i), isa.ImmInt(1))
	b.ISetp(p, isa.CmpLT, isa.R(i), isa.ImmInt(trips))
	b.BraIf(p, false, "loop")
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestTimelineBucketTotalsMatchProfile pins the invariant that makes the
// timeline trustworthy: summing any counter over the buckets reproduces
// the profile-level aggregate exactly, for both the cycle-stepped and
// the fast-forwarded (span-credited) paths.
func TestTimelineBucketTotalsMatchProfile(t *testing.T) {
	p := runSampled(t, buildSpin(t, 200), 3, 64)
	tl := p.Timeline
	if len(tl.Buckets) != TimelineBuckets {
		t.Fatalf("bucket count %d, want %d", len(tl.Buckets), TimelineBuckets)
	}
	if tl.BucketWidth <= 0 || tl.BucketWidth&(tl.BucketWidth-1) != 0 {
		t.Fatalf("bucket width %d is not a positive power of two", tl.BucketWidth)
	}
	var cycles int64
	var smc, awc, issued, ctrl, load, div uint64
	for _, b := range tl.Buckets {
		cycles += b.Cycles
		smc += b.SMCycles
		awc += b.ActiveWarpCycles
		issued += b.Issued
		ctrl += b.CtrlOps
		load += b.LoadResidency
		div += b.DivResidency
	}
	if cycles != p.Cycles {
		t.Errorf("bucket cycles %d, profile %d", cycles, p.Cycles)
	}
	if smc != p.SMCycles {
		t.Errorf("bucket SM cycles %d, profile %d", smc, p.SMCycles)
	}
	if awc != p.ActiveWarpCycles {
		t.Errorf("bucket warp cycles %d, profile %d", awc, p.ActiveWarpCycles)
	}
	if issued != p.WarpInstrs {
		t.Errorf("bucket issued %d, profile %d", issued, p.WarpInstrs)
	}
	if ctrl != p.CtrlOps {
		t.Errorf("bucket ctrl ops %d, profile %d", ctrl, p.CtrlOps)
	}
	if load != p.LoadResidency {
		t.Errorf("bucket load residency %d, profile %d", load, p.LoadResidency)
	}
	if div != p.DivResidency {
		t.Errorf("bucket div residency %d, profile %d", div, p.DivResidency)
	}
	if p.WarpInstrs == 0 || p.CtrlOps == 0 {
		t.Fatal("spin kernel should issue instructions and take branches")
	}
}

// TestTimelineFoldsKeepTotals forces the launch far past the initial
// 64-cycle capacity and checks that pairwise folding preserved every
// counter while the width grew to cover the run.
func TestTimelineFoldsKeepTotals(t *testing.T) {
	p := runSampled(t, buildSpin(t, 2000), 1, 32)
	tl := p.Timeline
	if tl.BucketWidth < 2 {
		t.Fatalf("run of %d cycles must have folded, width %d", p.Cycles, tl.BucketWidth)
	}
	if tl.BucketWidth*int64(TimelineBuckets) < p.Cycles {
		t.Fatalf("width %d x %d buckets cannot cover %d cycles",
			tl.BucketWidth, TimelineBuckets, p.Cycles)
	}
	var cycles int64
	var issued uint64
	for _, b := range tl.Buckets {
		cycles += b.Cycles
		issued += b.Issued
	}
	if cycles != p.Cycles || issued != p.WarpInstrs {
		t.Fatalf("fold lost counts: %d/%d cycles, %d/%d issued",
			cycles, p.Cycles, issued, p.WarpInstrs)
	}
}

// TestTimelineAbsentWithoutSampling pins the campaign-path contract: no
// SampleTimeline, no buckets — but the aggregate residency counters are
// still recorded.
func TestTimelineAbsentWithoutSampling(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	res, err := Run(Config{
		Device: device.K40c(), Program: buildSpin(t, 50),
		GridX: 1, GridY: 1, BlockThreads: 32,
	}, g)
	if err != nil || res.Outcome != OutcomeOK {
		t.Fatalf("run: %v %v", err, res.DUEReason)
	}
	if res.Profile.Timeline.Buckets != nil {
		t.Error("timeline sampled without SampleTimeline")
	}
	if res.Profile.CtrlOps == 0 {
		t.Error("aggregate residency counters must be recorded even without sampling")
	}
}

// TestTimelineDeterministic pins that two identical sampled runs yield
// byte-identical timelines.
func TestTimelineDeterministic(t *testing.T) {
	a := runSampled(t, buildSpin(t, 300), 2, 64)
	b := runSampled(t, buildSpin(t, 300), 2, 64)
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("timelines differ between identical runs")
	}
}

// TestZeroProfileResidency pins the zero-cycle guard: the zero-value
// Profile (what an empty-grid launch would produce) and an aggregate of
// no launches yield all-zero metrics, never NaN or Inf.
func TestZeroProfileResidency(t *testing.T) {
	check := func(name string, p Profile) {
		t.Helper()
		dev := device.K40c()
		r := p.Residency(dev)
		for _, v := range []float64{
			r.SchedUtil, r.FetchRate, r.DivDepth, r.LoadDepth,
			r.WarpsPerSMCycle, r.SMCyclesPerCycle,
			p.IPC(), p.AchievedOccupancy(dev),
		} {
			if v != 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: zero profile produced %v, want 0", name, v)
			}
		}
	}
	check("zero value", Profile{})
	check("empty aggregate", Aggregate(nil))
}
