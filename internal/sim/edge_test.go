package sim

import (
	"strings"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Edge-case coverage for the SIMT engine: explicit SSY/SYNC use,
// divergence-stack overflow, barrier misuse, fault-kind corner cases,
// and the unsupported-unit guard.

func TestExplicitSyncJumpsToReconvergence(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	oBase, _ := g.Alloc(32 * 4)
	b := asm.New("sync", asm.O1)
	gr := b.R()
	b.S2R(gr, isa.SrTidX)
	out := b.R()
	b.MovImm(out, 0)
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(gr), isa.ImmInt(16))
	// Manual SSY region: the taken path SYNCs out early, skipping the
	// poison write.
	b.SSY("join")
	b.BraIf(p, true, "join") // threads >= 16 skip to join
	b.MovImm(out, 1)
	b.Sync() // jump to reconvergence: must skip the poison below
	b.MovImm(out, 99)
	b.Label("join")
	addr := b.R()
	b.IMad(addr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(oBase)))
	b.Stg(addr, 0, out)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 32; i++ {
		want := uint32(0)
		if i < 16 {
			want = 1
		}
		if got := g.Word(oBase + uint32(i*4)); got != want {
			t.Fatalf("lane %d = %d, want %d", i, got, want)
		}
	}
}

func TestSyncOutsideDivergenceIsDUE(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	// The assembler's verify gate rejects an uncovered SYNC at build
	// time, so hand-assemble the malformed program: the engine's own
	// runtime fault path must still catch it.
	zero := [3]isa.Operand{isa.R(isa.RZ), isa.R(isa.RZ), isa.R(isa.RZ)}
	prog := &isa.Program{Name: "badsync", Instrs: []isa.Instr{
		{Op: isa.OpSYNC, Pred: isa.PT, DstP: isa.PT, Dst: isa.RZ, Srcs: zero},
		{Op: isa.OpEXIT, Pred: isa.PT, DstP: isa.PT, Dst: isa.RZ, Srcs: zero},
	}}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeDUE || res.DUEMode != DUESyncError {
		t.Fatalf("bare SYNC must fault as a sync error: %+v", res)
	}
}

func TestBarrierInDivergentRegionIsDUE(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	b := asm.New("badbar", asm.O1)
	gr := b.R()
	b.S2R(gr, isa.SrTidX)
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(gr), isa.ImmInt(16))
	b.If(p, false, func() {
		b.Bar() // only half the warp arrives
	})
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeDUE || res.DUEMode != DUESyncError {
		t.Fatalf("divergent barrier must fault as a sync error: %+v", res)
	}
}

func TestUnsupportedUnitRejectedAtLaunch(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	b := asm.New("mma_on_kepler", asm.O1)
	aF := b.RVec(4, 4)
	bF := b.RVec(4, 4)
	cF := b.RVec(8, 8)
	b.HMMA(cF, aF, bF, cF)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g); err == nil {
		t.Fatal("HMMA on Kepler must be rejected at launch")
	}
}

func TestFaultRegIndexMisroutesResult(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	oBase, _ := g.Alloc(32 * 4)
	build := func() *isa.Program {
		b := asm.New("ioa", asm.O1)
		gr := b.R()
		b.S2R(gr, isa.SrTidX)
		v := b.R()
		b.MovImm(v, 7)
		b.IAdd(v, isa.R(v), isa.ImmInt(1)) // injection target: writes 8
		addr := b.R()
		b.IMad(addr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(oBase)))
		b.Stg(addr, 0, v)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	fp := &FaultPlan{
		Kind:         FaultRegIndex,
		Filter:       func(op isa.Op) bool { return op == isa.OpIADD },
		TriggerIndex: 3,
		Bit:          1,
	}
	res, _ := Run(Config{Device: device.K40c(), Program: build(), GridX: 1, GridY: 1, BlockThreads: 32, Fault: fp}, g)
	if !fp.Fired {
		t.Fatal("IOA fault did not fire")
	}
	if res.Outcome == OutcomeDUE {
		return // a misrouted write corrupting an address register may crash
	}
	// Lane 3's IADD result landed in a wrong register; depending on which
	// register absorbed it, lane 3's output is stale, missing, or its
	// store went astray — but the output region must differ from golden.
	diffs := 0
	for i := 0; i < 32; i++ {
		if g.Word(oBase+uint32(i*4)) != 8 {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("misrouted destination register left the output untouched")
	}
}

func TestFaultSharedBit(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	oBase, _ := g.Alloc(32 * 4)
	build := func() *isa.Program {
		b := asm.New("shbit", asm.O1)
		sh := b.AllocShared(32 * 4)
		gr := b.R()
		b.S2R(gr, isa.SrTidX)
		sAddr := b.R()
		b.IMad(sAddr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(sh)))
		v := b.R()
		b.MovImm(v, 0x1000)
		b.Sts(sAddr, 0, v)
		b.Bar()
		// Long dependency chain so the strike lands between store and load.
		cnt := b.R()
		b.ForCounter(cnt, 0, 64, asm.LoopOpts{}, func() { b.Nop() })
		got := b.R()
		b.Lds(got, sAddr, 0)
		oAddr := b.R()
		b.IMad(oAddr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(oBase)))
		b.Stg(oAddr, 0, got)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	fp := &FaultPlan{
		Kind:         FaultSharedBit,
		TriggerIndex: 200, // mid-exposure
		Block:        0,
		BitIdx:       5, // bit 5 of word 0
	}
	res, _ := Run(Config{Device: device.K40c(), Program: build(), GridX: 1, GridY: 1, BlockThreads: 32, Fault: fp}, g)
	if res.Outcome != OutcomeOK || !fp.Fired || !fp.Landed {
		t.Fatalf("shared-bit fault: %+v fired=%v landed=%v", res, fp.Fired, fp.Landed)
	}
	if got := g.Word(oBase); got != 0x1020 {
		t.Fatalf("thread 0 read 0x%x, want 0x1020 (bit 5 flipped)", got)
	}
	if got := g.Word(oBase + 4); got != 0x1000 {
		t.Fatalf("thread 1 read 0x%x, want clean 0x1000", got)
	}
}

func TestFaultGlobalBitPersistsAcrossLaunch(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	base, _ := g.Alloc(64)
	g.SetWord(base, 0xff)
	b := asm.New("noop", asm.O1)
	r := b.R()
	b.MovImm(r, 0)
	cnt := b.R()
	b.ForCounter(cnt, 0, 8, asm.LoopOpts{}, func() { b.Nop() })
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp := &FaultPlan{Kind: FaultGlobalBit, TriggerIndex: 10, BitIdx: 0}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32, Fault: fp}, g)
	if res.Outcome != OutcomeOK || !fp.Landed {
		t.Fatalf("global-bit fault failed: %+v", res)
	}
	if got := g.Word(base); got != 0xfe {
		t.Fatalf("word = 0x%x, want 0xfe (bit 0 flipped persists)", got)
	}
}

func TestAddrFaultHighWordAlwaysFaults(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	a, _ := g.Alloc(64 * 4)
	b := asm.New("hibit", asm.O1)
	gr := b.R()
	b.S2R(gr, isa.SrTidX)
	addr := b.R()
	b.IMad(addr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(a)))
	v := b.R()
	b.Ldg(v, addr, 0)
	b.Stg(addr, 0, v)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp := &FaultPlan{
		Kind:         FaultAddrBit,
		Filter:       func(op isa.Op) bool { return op == isa.OpLDG },
		TriggerIndex: 0,
		Bit:          40, // high address word: out of the 32-bit arena
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32, Fault: fp}, g)
	if res.Outcome != OutcomeDUE || res.DUEMode != DUEIllegalAddress {
		t.Fatalf("a flip in the high address word must always fault as an illegal address: %+v", res.DUEMode)
	}
}

func TestDeterministicUnderFaultPlans(t *testing.T) {
	// The same plan gives bit-identical outcomes on repeat runs.
	for trial := 0; trial < 2; trial++ {
		g := mem.NewGlobal(1 << 16)
		oBase, _ := g.Alloc(64 * 4)
		b := asm.New("det", asm.O1)
		gr := b.R()
		b.S2R(gr, isa.SrTidX)
		v := b.R()
		b.IMul(v, isa.R(gr), isa.ImmInt(3))
		addr := b.R()
		b.IMad(addr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(oBase)))
		b.Stg(addr, 0, v)
		b.Exit()
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		fp := &FaultPlan{
			Kind:         FaultValueBit,
			Filter:       func(op isa.Op) bool { return op == isa.OpIMUL },
			TriggerIndex: 17,
			Bit:          9,
		}
		res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 64, Fault: fp}, g)
		if res.Outcome != OutcomeOK {
			t.Fatal(res.DUEReason)
		}
		if got := g.Word(oBase + 17*4); got != (17*3)^(1<<9) {
			t.Fatalf("trial %d: lane 17 = %d", trial, got)
		}
	}
}

func TestTraceEmitsIssuedInstructions(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	oBase, _ := g.Alloc(32 * 4)
	b := asm.New("traced", asm.O1)
	gr := b.R()
	b.S2R(gr, isa.SrTidX)
	addr := b.R()
	b.IMad(addr, isa.R(gr), isa.ImmInt(4), isa.ImmInt(int32(oBase)))
	b.Stg(addr, 0, gr)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	res, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32, Trace: &buf}, g)
	if err != nil || res.Outcome != OutcomeOK {
		t.Fatalf("%v %v", err, res)
	}
	out := buf.String()
	for _, want := range []string{"S2R R0, SR_TID.X;", "STG.E", "EXIT;", "cta000 w00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != len(prog.Instrs) {
		t.Fatalf("trace has %d lines, want %d (one per issued warp-instruction)", lines, len(prog.Instrs))
	}
}
