// Package sim is the SIMT architectural simulator: it executes SASS-like
// programs (internal/isa, built by internal/asm) on a simulated GPU
// (internal/device) with warp-level scheduling, scoreboarding, PDOM
// divergence reconvergence, block residency governed by the occupancy
// rules, and cycle-approximate timing.
//
// The simulator is the injection surface shared by all three
// methodologies of the paper: the profiler reads its dynamic counters,
// the fault injectors perturb architectural state through FaultPlan, and
// the beam campaign adds storage and hidden-resource strikes on top.
//
// Runs are fully deterministic: the same program, inputs, and fault plan
// produce the same result, which the injectors rely on for golden
// comparison.
package sim

import (
	"fmt"
	"io"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Config describes one kernel launch.
type Config struct {
	Device  *device.Device
	Program *isa.Program

	// GridX and GridY give the block grid; BlockThreads is the 1-D block
	// size (CTAs with 2-D indexing read SR_CTAID.X/Y).
	GridX, GridY int
	BlockThreads int

	// MaxCycles is the watchdog budget; exceeding it is a DUE (hang).
	// Zero means 50 million cycles.
	MaxCycles int64

	// Fault optionally perturbs the run (nil for golden runs).
	Fault *FaultPlan

	// Record, when non-nil, makes this (golden) run capture full-state
	// sub-launch images every Record.Interval lane-operations; faulted
	// replays of the same launch start from the nearest image (RunFrom)
	// instead of the launch boundary.
	Record *ImageRecorder

	// Golden supplies the golden run's sub-launch images to a faulted
	// replay: once the fault has fired, the engine compares itself
	// against the image captured at the same cycle and stops early with
	// Result.RejoinedGolden when the state has provably rejoined the
	// golden execution.
	Golden []*LaunchImage

	// SampleTimeline asks the engine to record the per-launch residency
	// Timeline (scheduler slots, outstanding loads, divergence depth,
	// fetch activity per cycle bucket). Golden runs turn it on; fault
	// campaigns leave it off to keep the hot loop untouched. The
	// aggregate residency counters on Profile are recorded either way.
	SampleTimeline bool

	// LeanProfile drops the profile-only accounting from the issue path
	// (per-op lane counts, residency and fetch-redirect counters) — the
	// corresponding Profile fields come back zero. Outcome, cycle count,
	// and the fault-trigger clocks are unaffected. Fault replays set it:
	// their Profile is discarded, only the classification matters.
	LeanProfile bool

	// Trace, when non-nil, receives one line per issued warp-instruction
	// ("cycle sm warp pc disassembly"), the dynamic analogue of
	// Program.Disassemble. Tracing slows simulation considerably; use it
	// for debugging kernels, not campaigns.
	Trace io.Writer
}

// Outcome classifies how a run terminated.
type Outcome uint8

// Run outcomes. SDCs are not visible at this level: they are determined
// by the workload's output comparator.
const (
	OutcomeOK Outcome = iota
	OutcomeDUE
)

// String names the outcome.
func (o Outcome) String() string {
	if o == OutcomeOK {
		return "ok"
	}
	return "DUE"
}

// Result is the outcome of one launch.
type Result struct {
	Outcome Outcome
	// DUEMode is the typed mechanism of a DUE outcome (DUENone
	// otherwise); DUEReason carries the human-readable detail string.
	DUEMode   DUEMode
	DUEReason string
	Profile   Profile

	// RejoinedGolden reports that a faulted replay stopped early because
	// its full state matched a golden sub-launch image (Config.Golden):
	// the rest of the launch — and therefore the program — would replay
	// the golden run exactly, so the fault is architecturally masked.
	// The Profile of such a run covers only the simulated prefix.
	RejoinedGolden bool
}

// Profile carries the dynamic execution metrics the profiler and the
// beam's exposure model consume.
type Profile struct {
	Cycles     int64
	WarpInstrs uint64
	LaneOps    uint64

	// PerOpLane counts executed lane-level operations per opcode.
	PerOpLane map[isa.Op]uint64

	// ActiveWarpCycles sums, over all cycles and SMs, the number of
	// resident unfinished warps; SMCycles sums the cycles during which
	// each SM had at least one live warp.
	ActiveWarpCycles uint64
	SMCycles         uint64

	// SMsUsed is the number of SMs that received at least one block.
	SMsUsed int

	// Residency counters (see Residency for the derived rates): CtrlOps
	// counts issued fetch-redirecting instructions, LoadResidency
	// integrates outstanding-load latency over issued loads, and
	// DivResidency integrates live divergence-stack entries over issued
	// warp-instructions.
	CtrlOps       uint64
	LoadResidency uint64
	DivResidency  uint64

	// Timeline is the per-launch residency sample series, recorded only
	// when Config.SampleTimeline was set (empty otherwise).
	Timeline Timeline
}

// IPC returns issued warp-instructions per SM-cycle, the metric NVIDIA
// profilers call "issued IPC" and Table I reports.
func (p *Profile) IPC() float64 {
	if p.SMCycles == 0 {
		return 0
	}
	return float64(p.WarpInstrs) / float64(p.SMCycles)
}

// AchievedOccupancy returns average resident warps per SM-cycle divided
// by the maximum resident warps, as in Table I.
func (p *Profile) AchievedOccupancy(dev *device.Device) float64 {
	if p.SMCycles == 0 {
		return 0
	}
	return float64(p.ActiveWarpCycles) / float64(p.SMCycles) / float64(dev.MaxWarpsPerSM)
}

// ClassLaneOps aggregates lane-op counts by Figure-1 instruction class.
func (p *Profile) ClassLaneOps() map[isa.Class]uint64 {
	out := make(map[isa.Class]uint64, isa.ClassCount)
	for op, n := range p.PerOpLane {
		out[op.ClassOf()] += n
	}
	return out
}

// Run launches the kernel and simulates it to completion.
func Run(cfg Config, global *mem.Global) (*Result, error) {
	e, err := newEngine(cfg, global)
	if err != nil {
		return nil, err
	}
	return e.run(), nil
}

// RunFrom resumes the launch from a golden sub-launch image instead of
// the launch start: global memory, all resident architectural state, and
// the fault-trigger clocks are rewound to the image, and only the
// suffix is simulated. The image must come from a golden run of the
// same Config geometry (kernels.Runner guarantees this); cfg.Fault's
// trigger must not precede the image's clocks (use PickImage).
func RunFrom(cfg Config, global *mem.Global, img *LaunchImage) (*Result, error) {
	e, err := prepEngine(cfg, global)
	if err != nil {
		return nil, err
	}
	e.restoreImage(img)
	return e.run(), nil
}

func validate(cfg Config) error {
	switch {
	case cfg.Device == nil:
		return fmt.Errorf("sim: nil device")
	case cfg.Program == nil:
		return fmt.Errorf("sim: nil program")
	case cfg.GridX <= 0 || cfg.GridY <= 0:
		return fmt.Errorf("sim: invalid grid %dx%d", cfg.GridX, cfg.GridY)
	case cfg.BlockThreads <= 0 || cfg.BlockThreads > 1024:
		return fmt.Errorf("sim: invalid block size %d", cfg.BlockThreads)
	case cfg.Program.SharedMem > cfg.Device.SharedMemPerSM:
		return fmt.Errorf("sim: kernel needs %dB shared, SM has %dB",
			cfg.Program.SharedMem, cfg.Device.SharedMemPerSM)
	}
	return nil
}
