package sim

import "gpurel/internal/isa"

// FaultKind is the architectural manifestation of a transient fault.
type FaultKind uint8

// Fault kinds. The first group mirrors the SASSIFI/NVBitFI injection
// modes; the second models storage strikes the beam campaign applies
// when ECC is disabled.
const (
	// FaultValueBit flips one bit of the destination value of the
	// triggered dynamic lane-operation (SASSIFI IOV, NVBitFI default).
	FaultValueBit FaultKind = iota
	// FaultRegIndex redirects the destination register of the triggered
	// lane-operation (SASSIFI IOA: instruction output address).
	FaultRegIndex
	// FaultPredBit flips a predicate register of the triggered lane
	// after the triggered operation completes (SASSIFI predicate mode).
	FaultPredBit
	// FaultAddrBit flips one bit of the effective address of the
	// triggered memory lane-operation (LDST-path strike).
	FaultAddrBit
	// FaultSkip suppresses the triggered warp-instruction entirely
	// (pipeline-latch strike observed only by the beam).
	FaultSkip

	// FaultRFBit flips a register-file bit of a specific resident thread
	// when the trigger count is reached.
	FaultRFBit
	// FaultSharedBit flips a shared-memory bit of a resident block.
	FaultSharedBit
	// FaultGlobalBit flips an allocated global-memory bit.
	FaultGlobalBit
)

// String names the fault kind.
func (k FaultKind) String() string {
	return [...]string{
		"value-bit", "reg-index", "pred-bit", "addr-bit", "skip",
		"rf-bit", "shared-bit", "global-bit",
	}[k]
}

// FaultPlan schedules exactly one fault in a run. Triggering is counted
// in dynamic lane-operations (thread-level executed instructions),
// optionally restricted by Filter; storage faults use the unfiltered
// lane-op stream as their logical clock.
type FaultPlan struct {
	Kind FaultKind

	// Filter restricts which lane-ops advance the trigger counter
	// (nil: all ops). SASSIFI campaigns filter by instruction class;
	// NVBitFI filters to GPR-writing instructions.
	Filter func(op isa.Op) bool

	// TriggerIndex is the index within the filtered lane-op stream at
	// which the fault fires.
	TriggerIndex uint64

	// Bit selects which bit to flip. Interpreted modulo the width of the
	// target (destination value, address, register index distance).
	Bit int

	// Storage-fault coordinates.
	Block  int    // linear CTA index
	Thread int    // thread within block
	Reg    int    // register index (FaultRFBit)
	BitIdx uint64 // bit within the shared/global region

	// Fired reports whether the fault's trigger was reached during the
	// run. A plan that never fires (the trigger exceeds the dynamic
	// instruction count) leaves the run golden and the campaign
	// classifies it as Masked.
	Fired bool

	// FiredBit / FiredWidth record, for a fired FaultValueBit plan, the
	// bit position actually flipped and the width of the destination
	// window it landed in (32 for a single register or store value, 64
	// for a register pair or the MMA fragment window). FiredWidth stays
	// 0 until a flip is applied, letting campaigns attribute each trial
	// to a bit position for per-band cross-validation.
	FiredBit   int
	FiredWidth int

	// Landed reports, for storage faults, whether the flipped bit
	// belonged to live (resident) state. A strike on a CTA that is not
	// resident hits dead silicon and is masked by construction.
	Landed bool
}

// matches reports whether the op passes the plan's filter.
func (p *FaultPlan) matches(op isa.Op) bool {
	return p.Filter == nil || p.Filter(op)
}
