package sim

import (
	"fmt"
	"math/bits"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

const (
	defaultMaxCycles = 50_000_000
	maxSIMTDepth     = 64
)

// simtEntry is one level of the PDOM reconvergence stack.
type simtEntry struct {
	mask uint32
	pc   int32
	rpc  int32 // reconvergence PC; popping happens when pc reaches it
}

type warpState struct {
	block    *blockState
	widx     int // warp index within the block
	fullMask uint32

	stack         []simtEntry
	exited        uint32
	atBar         bool
	pendingReconv int32

	regReady  []int64 // scoreboard: cycle at which each register is ready
	predReady [8]int64

	done bool
}

// effTop pops exhausted and reconverged entries and returns the active
// one, or nil when the warp has finished.
func (w *warpState) effTop() *simtEntry {
	for len(w.stack) > 0 {
		top := &w.stack[len(w.stack)-1]
		if top.mask&^w.exited == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.pc == top.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return top
	}
	return nil
}

type blockState struct {
	cta        int // linear CTA index
	ctaX, ctaY int
	threads    int

	regs   [][]uint32 // [thread][register]
	preds  [][8]bool  // [thread][predicate]
	shared *mem.Shared

	warps      []*warpState
	liveWarps  int
	barWaiting int
}

type smState struct {
	warps     []*warpState // resident warps, in residency order
	liveWarps int
	lastPick  []int // per-scheduler round-robin cursor
}

type engine struct {
	cfg  Config
	dev  *device.Device
	prog *isa.Program
	glob *mem.Global

	dec []decoded
	occ device.Occupancy

	sms        []smState
	nextBlock  int
	totalBlock int
	liveBlocks int

	cycle     int64
	maxCycles int64

	fault *FaultPlan

	// Dynamic counters. laneOps is the unfiltered lane-operation clock;
	// filteredOps advances only on ops matching the fault plan's filter.
	laneOps     uint64
	filteredOps uint64
	perOpLane   [isa.OpCount]uint64
	warpInstrs  uint64

	activeWarpCycles uint64
	smCycles         uint64
	smsUsed          int

	// Residency counters (Profile.CtrlOps / LoadResidency /
	// DivResidency); recorded unconditionally — they are a handful of
	// integer adds on the issue path.
	ctrlOps       uint64
	loadResidency uint64
	divResidency  uint64

	// Timeline sampling state, nil unless Config.SampleTimeline. tl is
	// the fixed bucket array; bucket width is 1<<tlShift cycles and
	// doubles (folding adjacent pairs) when the launch outruns it. tlCur
	// caches the current cycle's bucket for the issue path.
	tl      []TimelineBucket
	tlShift uint
	tlCur   *TimelineBucket

	// Fast-forward bookkeeping: when a whole cycle issues nothing, the
	// engine jumps to the earliest scoreboard-ready time instead of
	// spinning through memory-latency stalls cycle by cycle.
	issuedThisCycle int
	nextReady       int64

	due string
}

// decoded caches per-instruction metadata the scheduler consults every
// cycle.
type decoded struct {
	in       *isa.Instr
	unit     device.Unit
	latency  int64
	dstBase  isa.Reg
	dstN     int
	srcSpans [][2]isa.Reg
	writesP  bool
	readsP   isa.PredReg // PT when none beyond the guard
}

func newEngine(cfg Config, global *mem.Global) (*engine, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	dev, prog := cfg.Device, cfg.Program
	occ, err := dev.OccupancyFor(cfg.BlockThreads, prog.NumRegs, prog.SharedMem)
	if err != nil {
		return nil, fmt.Errorf("sim: launch of %s: %w", prog.Name, err)
	}
	e := &engine{
		cfg:        cfg,
		dev:        dev,
		prog:       prog,
		glob:       global,
		occ:        occ,
		totalBlock: cfg.GridX * cfg.GridY,
		maxCycles:  cfg.MaxCycles,
		fault:      cfg.Fault,
	}
	if e.maxCycles == 0 {
		e.maxCycles = defaultMaxCycles
	}
	if cfg.SampleTimeline {
		e.tl = make([]TimelineBucket, TimelineBuckets)
	}
	e.decode()
	for i := range e.dec {
		if dev.UnitsPerSM[e.dec[i].unit] == 0 {
			return nil, fmt.Errorf("sim: %s uses %s, which %s has no %s units for",
				prog.Name, e.dec[i].in.Op, dev.Name, e.dec[i].unit)
		}
	}
	e.sms = make([]smState, dev.NumSMs)
	for i := range e.sms {
		e.sms[i].lastPick = make([]int, dev.SchedulersPerSM)
	}
	// Initial wave: fill SMs round-robin up to the residency limit.
	for slot := 0; slot < occ.BlocksPerSM; slot++ {
		for s := range e.sms {
			e.launchNextBlock(&e.sms[s])
		}
	}
	return e, nil
}

func (e *engine) decode() {
	e.dec = make([]decoded, len(e.prog.Instrs))
	for i := range e.prog.Instrs {
		in := &e.prog.Instrs[i]
		d := decoded{
			in:      in,
			unit:    e.dev.UnitFor(in.Op),
			latency: int64(e.dev.Latency(in.Op)),
			dstBase: in.Dst,
			dstN:    in.DstRegs(),
			readsP:  isa.PT,
		}
		d.srcSpans = in.SrcRegSpans()
		switch in.Op {
		case isa.OpISETP, isa.OpFSETP, isa.OpDSETP, isa.OpHSETP:
			d.writesP = true
		case isa.OpSEL:
			d.readsP = in.DstP
		}
		e.dec[i] = d
	}
}

// launchNextBlock makes the next pending CTA resident on the SM.
func (e *engine) launchNextBlock(sm *smState) {
	if e.nextBlock >= e.totalBlock {
		return
	}
	cta := e.nextBlock
	e.nextBlock++
	e.liveBlocks++

	nthreads := e.cfg.BlockThreads
	nwarps := (nthreads + 31) / 32
	blk := &blockState{
		cta:     cta,
		ctaX:    cta % e.cfg.GridX,
		ctaY:    cta / e.cfg.GridX,
		threads: nthreads,
		regs:    make([][]uint32, nthreads),
		preds:   make([][8]bool, nthreads),
		shared:  mem.NewShared(e.prog.SharedMem),
	}
	nregs := e.prog.NumRegs
	if nregs < 1 {
		nregs = 1
	}
	regBacking := make([]uint32, nthreads*nregs)
	for t := 0; t < nthreads; t++ {
		blk.regs[t] = regBacking[t*nregs : (t+1)*nregs : (t+1)*nregs]
		blk.preds[t][isa.PT] = true
	}
	for wi := 0; wi < nwarps; wi++ {
		lanes := 32
		if wi == nwarps-1 && nthreads%32 != 0 {
			lanes = nthreads % 32
		}
		full := uint32(1)<<lanes - 1
		if lanes == 32 {
			full = ^uint32(0)
		}
		w := &warpState{
			block:         blk,
			widx:          wi,
			fullMask:      full,
			stack:         []simtEntry{{mask: full, pc: 0, rpc: -1}},
			pendingReconv: -1,
			regReady:      make([]int64, nregs),
		}
		blk.warps = append(blk.warps, w)
		sm.warps = append(sm.warps, w)
	}
	blk.liveWarps = nwarps
	sm.liveWarps += nwarps
}

// retireWarp handles a fully exited warp.
func (e *engine) retireWarp(sm *smState, w *warpState) {
	if w.done {
		return
	}
	w.done = true
	e.issuedThisCycle++ // retirement is forward progress for deadlock detection
	sm.liveWarps--
	blk := w.block
	blk.liveWarps--
	e.checkBarrier(blk)
	if blk.liveWarps == 0 {
		e.liveBlocks--
		// Compact the SM's warp list and backfill with a pending CTA.
		kept := sm.warps[:0]
		for _, ww := range sm.warps {
			if ww.block != blk {
				kept = append(kept, ww)
			}
		}
		sm.warps = kept
		e.launchNextBlock(sm)
	}
}

func (e *engine) checkBarrier(blk *blockState) {
	if blk.liveWarps > 0 && blk.barWaiting >= blk.liveWarps {
		for _, w := range blk.warps {
			w.atBar = false
		}
		blk.barWaiting = 0
	}
}

// run executes the launch to completion or DUE.
func (e *engine) run() *Result {
	for i := range e.sms {
		if len(e.sms[i].warps) > 0 {
			e.smsUsed++
		}
	}
	slots := make([]int, device.UnitCount)
	for e.liveBlocks > 0 || e.nextBlock < e.totalBlock {
		e.cycle++
		if e.cycle > e.maxCycles {
			e.due = "watchdog timeout (hang)"
			break
		}
		e.issuedThisCycle = 0
		e.nextReady = int64(1) << 62
		if e.tl != nil {
			e.tlCur = e.bucketFor(e.cycle)
			e.tlCur.Cycles++
		}
		for s := range e.sms {
			sm := &e.sms[s]
			if sm.liveWarps == 0 {
				continue
			}
			e.smCycles++
			e.activeWarpCycles += uint64(sm.liveWarps)
			if e.tlCur != nil {
				e.tlCur.SMCycles++
				e.tlCur.ActiveWarpCycles += uint64(sm.liveWarps)
			}
			for u := range slots {
				slots[u] = e.dev.IssueSlots(device.Unit(u))
			}
			for sched := 0; sched < e.dev.SchedulersPerSM; sched++ {
				e.scheduleOne(sm, sched, slots)
				if e.due != "" {
					break
				}
			}
			if e.due != "" {
				break
			}
		}
		if e.due != "" {
			break
		}
		if e.issuedThisCycle == 0 && (e.liveBlocks > 0 || e.nextBlock < e.totalBlock) {
			// Every live warp is stalled. Jump to the earliest time the
			// scoreboard unblocks anyone, crediting the skipped cycles to
			// the occupancy accounting.
			if e.nextReady >= int64(1)<<62 {
				e.due = "scheduler deadlock: no warp can ever issue"
				break
			}
			skip := e.nextReady - e.cycle - 1
			if skip > 0 {
				if e.cycle+skip > e.maxCycles {
					skip = e.maxCycles - e.cycle
				}
				var liveSMs int
				var liveW uint64
				for s := range e.sms {
					if lw := e.sms[s].liveWarps; lw > 0 {
						e.smCycles += uint64(skip)
						e.activeWarpCycles += uint64(skip) * uint64(lw)
						liveSMs++
						liveW += uint64(lw)
					}
				}
				if e.tl != nil {
					e.tlAddSpan(e.cycle+1, e.cycle+skip, liveSMs, liveW)
				}
				e.cycle += skip
			}
		}
	}

	res := &Result{
		Profile: Profile{
			Cycles:           e.cycle,
			WarpInstrs:       e.warpInstrs,
			LaneOps:          e.laneOps,
			PerOpLane:        make(map[isa.Op]uint64),
			ActiveWarpCycles: e.activeWarpCycles,
			SMCycles:         e.smCycles,
			SMsUsed:          e.smsUsed,
			CtrlOps:          e.ctrlOps,
			LoadResidency:    e.loadResidency,
			DivResidency:     e.divResidency,
		},
	}
	if e.tl != nil {
		res.Profile.Timeline = Timeline{
			BucketWidth: int64(1) << e.tlShift,
			Buckets:     e.tl,
		}
	}
	for op, n := range e.perOpLane {
		if n > 0 {
			res.Profile.PerOpLane[isa.Op(op)] = n
		}
	}
	if e.due != "" {
		res.Outcome = OutcomeDUE
		res.DUEReason = e.due
	}
	return res
}

// scheduleOne lets one scheduler pick a warp and issue up to
// IssuePerScheduler instructions from it.
func (e *engine) scheduleOne(sm *smState, sched int, slots []int) {
	n := len(sm.warps)
	if n == 0 {
		return
	}
	start := sm.lastPick[sched]
	for probe := 0; probe < n; probe++ {
		wi := (start + probe) % n
		// Warp retirement compacts sm.warps mid-scan; skip stale indices.
		if wi >= len(sm.warps) {
			continue
		}
		if wi%e.dev.SchedulersPerSM != sched {
			continue
		}
		w := sm.warps[wi]
		if w.done || w.atBar {
			continue
		}
		top := w.effTop()
		if top == nil {
			e.retireWarp(sm, w)
			continue
		}
		if !e.ready(w, top, slots) {
			continue
		}
		issued := 0
		for issued < e.dev.IssuePerScheduler {
			top = w.effTop()
			if top == nil {
				e.retireWarp(sm, w)
				break
			}
			if w.atBar || !e.ready(w, top, slots) {
				break
			}
			ctrl := e.issue(sm, w, top, slots)
			issued++
			if ctrl || e.due != "" {
				break // do not dual-issue past control flow
			}
		}
		sm.lastPick[sched] = wi + 1
		return
	}
}

// ready checks scoreboard and issue-slot availability for the warp's next
// instruction.
func (e *engine) ready(w *warpState, top *simtEntry, slots []int) bool {
	if int(top.pc) >= len(e.dec) {
		return true // will fault at issue
	}
	d := &e.dec[top.pc]
	if slots[d.unit] <= 0 {
		return false
	}
	now := e.cycle
	ok := true
	block := func(ready int64) {
		ok = false
		if ready < e.nextReady {
			e.nextReady = ready
		}
	}
	for _, span := range d.srcSpans {
		for r := span[0]; r < span[0]+span[1]; r++ {
			if w.regReady[r] > now {
				block(w.regReady[r])
			}
		}
	}
	for r := d.dstBase; r < d.dstBase+isa.Reg(d.dstN); r++ {
		if r != isa.RZ && w.regReady[r] > now {
			block(w.regReady[r])
		}
	}
	in := d.in
	if in.Pred != isa.PT && w.predReady[in.Pred] > now {
		block(w.predReady[in.Pred])
	}
	if d.readsP != isa.PT && w.predReady[d.readsP] > now {
		block(w.predReady[d.readsP])
	}
	if d.writesP && in.DstP != isa.PT && w.predReady[in.DstP] > now {
		block(w.predReady[in.DstP])
	}
	return ok
}

// issue executes one warp-instruction. It returns true when the
// instruction was control flow (ends a dual-issue pair).
func (e *engine) issue(sm *smState, w *warpState, top *simtEntry, slots []int) bool {
	pc := top.pc
	if int(pc) >= len(e.dec) || pc < 0 {
		e.due = fmt.Sprintf("instruction fetch beyond program end (pc=%d)", pc)
		return true
	}
	d := &e.dec[pc]
	in := d.in
	slots[d.unit]--
	e.warpInstrs++
	e.issuedThisCycle++
	// Residency accounting: every entry above the warp's base stack
	// frame is live divergence state held while this instruction issues;
	// an issued load holds an LDST-queue/MSHR entry for its latency.
	div := uint64(len(w.stack) - 1)
	e.divResidency += div
	var load uint64
	if in.Op.IsLoad() {
		load = uint64(d.latency)
		e.loadResidency += load
	}
	if e.tlCur != nil {
		e.tlCur.Issued++
		e.tlCur.DivResidency += div
		e.tlCur.LoadResidency += load
	}
	if e.cfg.Trace != nil {
		fmt.Fprintf(e.cfg.Trace, "%8d cta%03d w%02d /*%04d*/ %s\n",
			e.cycle, w.block.cta, w.widx, pc, in.String())
	}

	// Guard evaluation per lane.
	active := top.mask &^ w.exited
	if in.Pred != isa.PT {
		var pm uint32
		base := w.widx * 32
		for lane := 0; lane < 32; lane++ {
			if active&(1<<lane) == 0 {
				continue
			}
			pv := w.block.preds[base+lane][in.Pred]
			if pv != in.PredNeg {
				pm |= 1 << lane
			}
		}
		if !in.Op.IsControl() {
			active = pm
		} else {
			// Control flow interprets the predicate itself (BRA).
			return e.control(sm, w, top, in, active, pm)
		}
	} else if in.Op.IsControl() {
		return e.control(sm, w, top, in, active, active)
	}

	// Dynamic counting and fault triggering happen on executed lanes.
	lanes := bits.OnesCount32(active)
	e.perOpLane[in.Op] += uint64(lanes)
	faultLane := e.armFault(in.Op, active, lanes)
	e.laneOps += uint64(lanes)

	if active != 0 && faultLane != skipWholeInstr {
		e.exec(w, d, active, faultLane)
	}
	// Scoreboard updates.
	for r := d.dstBase; r < d.dstBase+isa.Reg(d.dstN); r++ {
		if r != isa.RZ {
			w.regReady[r] = e.cycle + d.latency
		}
	}
	if d.writesP && in.DstP != isa.PT {
		w.predReady[in.DstP] = e.cycle + d.latency
	}
	top.pc = pc + 1
	return false
}

const (
	noFault        = -1
	skipWholeInstr = -2
)

// armFault advances the fault-trigger clocks and returns the lane (bit
// position) on which an operation-targeted fault fires during this
// warp-instruction, noFault when none, or skipWholeInstr for FaultSkip.
// Storage faults are applied immediately here.
func (e *engine) armFault(op isa.Op, active uint32, lanes int) int {
	f := e.fault
	if f == nil || f.Fired {
		return noFault
	}
	switch f.Kind {
	case FaultRFBit, FaultSharedBit, FaultGlobalBit:
		if e.laneOps+uint64(lanes) > f.TriggerIndex {
			e.applyStorageFault()
		}
		return noFault
	}
	if !f.matches(op) {
		return noFault
	}
	idx := e.filteredOps
	e.filteredOps += uint64(lanes)
	if f.TriggerIndex >= idx && f.TriggerIndex < idx+uint64(lanes) {
		f.Fired = true
		if f.Kind == FaultSkip {
			return skipWholeInstr
		}
		// Map the offset to the n-th active lane.
		nth := int(f.TriggerIndex - idx)
		for lane := 0; lane < 32; lane++ {
			if active&(1<<lane) != 0 {
				if nth == 0 {
					return lane
				}
				nth--
			}
		}
	}
	return noFault
}

// applyStorageFault flips the planned storage bit if its target is
// resident; otherwise the strike lands on dead state (Landed stays false
// and the campaign counts it as masked by construction).
func (e *engine) applyStorageFault() {
	f := e.fault
	f.Fired = true
	switch f.Kind {
	case FaultGlobalBit:
		e.glob.FlipBit(f.BitIdx)
		f.Landed = true
	case FaultRFBit, FaultSharedBit:
		blk := e.findResident(f.Block)
		if blk == nil {
			return // target CTA not resident: strike hits dead state
		}
		if f.Kind == FaultSharedBit {
			blk.shared.FlipBit(f.BitIdx)
			f.Landed = true
			return
		}
		t := f.Thread % blk.threads
		regs := blk.regs[t]
		r := f.Reg % len(regs)
		regs[r] ^= 1 << (f.Bit & 31)
		f.Landed = true
	}
}

func (e *engine) findResident(cta int) *blockState {
	for s := range e.sms {
		for _, w := range e.sms[s].warps {
			if w.block.cta == cta {
				return w.block
			}
		}
	}
	return nil
}

// control executes control-flow instructions. predMask holds the lanes
// (within active) where the guard predicate evaluated true.
func (e *engine) control(sm *smState, w *warpState, top *simtEntry, in *isa.Instr, active, predMask uint32) bool {
	e.perOpLane[in.Op] += uint64(bits.OnesCount32(active))
	e.laneOps += uint64(bits.OnesCount32(active))
	// Fetch-redirect accounting: a taken BRA and a SYNC jump move the
	// warp's fetch stream to a non-sequential PC; SSY/BAR/EXIT fall
	// through. This is the measured counterpart of the static model's
	// fetch-exposure proxy.
	switch in.Op {
	case isa.OpBRA:
		if predMask != 0 {
			e.ctrlOps++
			if e.tlCur != nil {
				e.tlCur.CtrlOps++
			}
		}
	case isa.OpSYNC:
		e.ctrlOps++
		if e.tlCur != nil {
			e.tlCur.CtrlOps++
		}
	}
	pc := top.pc
	switch in.Op {
	case isa.OpSSY:
		w.pendingReconv = int32(in.Target)
		top.pc = pc + 1
	case isa.OpBRA:
		taken := predMask
		rpc := w.pendingReconv
		w.pendingReconv = -1
		switch {
		case taken == 0:
			top.pc = pc + 1
		case taken == active:
			top.pc = int32(in.Target)
		default:
			if rpc < 0 {
				rpc = pc + 1
			}
			if len(w.stack) >= maxSIMTDepth {
				e.due = "divergence stack overflow"
				return true
			}
			top.pc = rpc
			w.stack = append(w.stack,
				simtEntry{mask: active &^ taken, pc: pc + 1, rpc: rpc},
				simtEntry{mask: taken, pc: int32(in.Target), rpc: rpc},
			)
		}
	case isa.OpSYNC:
		if top.rpc < 0 {
			e.due = "SYNC outside divergent region"
			return true
		}
		top.pc = top.rpc
	case isa.OpBAR:
		if active != w.fullMask&^w.exited {
			e.due = "barrier with divergent warp"
			return true
		}
		w.atBar = true
		w.block.barWaiting++
		e.checkBarrier(w.block)
		top.pc = pc + 1
	case isa.OpEXIT:
		w.exited |= predMask
		top.pc = pc + 1
		if w.exited == w.fullMask {
			e.retireWarp(sm, w)
		}
	default:
		e.due = fmt.Sprintf("unhandled control op %s", in.Op)
	}
	return true
}

// bucketFor returns the timeline bucket covering the cycle, folding the
// array (doubling the bucket width) as often as needed to keep the
// index inside the fixed bucket count.
func (e *engine) bucketFor(cycle int64) *TimelineBucket {
	idx := (cycle - 1) >> e.tlShift
	for idx >= TimelineBuckets {
		e.foldTimeline()
		idx = (cycle - 1) >> e.tlShift
	}
	return &e.tl[idx]
}

// foldTimeline merges adjacent bucket pairs into the front half of the
// array and doubles the bucket width, keeping memory O(1) per launch.
func (e *engine) foldTimeline() {
	for i := 0; i < TimelineBuckets/2; i++ {
		a, b := &e.tl[2*i], &e.tl[2*i+1]
		e.tl[i] = TimelineBucket{
			Cycles:           a.Cycles + b.Cycles,
			SMCycles:         a.SMCycles + b.SMCycles,
			ActiveWarpCycles: a.ActiveWarpCycles + b.ActiveWarpCycles,
			Issued:           a.Issued + b.Issued,
			CtrlOps:          a.CtrlOps + b.CtrlOps,
			LoadResidency:    a.LoadResidency + b.LoadResidency,
			DivResidency:     a.DivResidency + b.DivResidency,
		}
	}
	for i := TimelineBuckets / 2; i < TimelineBuckets; i++ {
		e.tl[i] = TimelineBucket{}
	}
	e.tlShift++
}

// tlAddSpan credits a fast-forwarded cycle span [from, to] to the
// timeline, walking whole buckets instead of individual cycles so a
// long memory stall costs O(buckets touched), not O(cycles skipped).
func (e *engine) tlAddSpan(from, to int64, liveSMs int, liveWarps uint64) {
	for c := from; c <= to; {
		b := e.bucketFor(c)
		width := int64(1) << e.tlShift
		bucketEnd := ((c-1)/width + 1) * width // last cycle this bucket covers
		n := to - c + 1
		if span := bucketEnd - c + 1; span < n {
			n = span
		}
		b.Cycles += n
		b.SMCycles += uint64(n) * uint64(liveSMs)
		b.ActiveWarpCycles += uint64(n) * liveWarps
		c += n
	}
}
