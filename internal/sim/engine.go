package sim

import (
	"fmt"
	"math/bits"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

const (
	defaultMaxCycles = 50_000_000
	maxSIMTDepth     = 64
)

// simtEntry is one level of the PDOM reconvergence stack.
type simtEntry struct {
	mask uint32
	pc   int32
	rpc  int32 // reconvergence PC; popping happens when pc reaches it
}

type warpState struct {
	block    *blockState
	widx     int // warp index within the block
	base     int // widx*32: first lane's thread index (SoA row offset)
	lanes    int // live lanes (32 except a trailing partial warp)
	fullMask uint32

	stack         []simtEntry
	exited        uint32
	atBar         bool
	pendingReconv int32

	regReady  []int64 // scoreboard: cycle at which each register is ready
	predReady [8]int64

	// stallUntil caches the earliest cycle any scoreboard dependency of
	// the warp's next instruction clears (0 when unknown). The warp's
	// stamps only change when the warp itself issues — which resets the
	// cache — so a stalled warp costs one comparison per probe instead
	// of a full dependency walk. Purely a scheduling cache: it never
	// affects outcomes and is excluded from checkpoint images.
	stallUntil int64

	// maxStamp is an upper bound on every scoreboard stamp of the warp
	// (regReady and predReady). Once the clock passes it, no dependency
	// of any instruction can be pending, so the readiness check skips
	// the wait-list walk entirely. An over-bound is sound — it only
	// costs walks — so issue() raises it whenever it stamps anything
	// and restores recompute it from the stamps. Derived cache, never
	// stored in or compared against checkpoint images.
	maxStamp int64

	done bool
}

// effTop pops exhausted and reconverged entries and returns the active
// one, or nil when the warp has finished.
func (w *warpState) effTop() *simtEntry {
	for len(w.stack) > 0 {
		top := &w.stack[len(w.stack)-1]
		if top.mask&^w.exited == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.pc == top.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return top
	}
	return nil
}

type blockState struct {
	cta        int // linear CTA index
	ctaX, ctaY int
	threads    int
	nregs      int

	// Struct-of-arrays architectural state: register r of thread t lives
	// at regs[r*threads+t], predicate p at preds[p*threads+t], so a
	// warp's view of one register is a contiguous 32-element slice.
	regs   []uint32
	preds  []bool
	shared *mem.Shared

	warps      []*warpState
	liveWarps  int
	barWaiting int
}

// regRow returns the contiguous lane view of one register for a warp.
func (b *blockState) regRow(r isa.Reg, base, lanes int) []uint32 {
	off := int(r)*b.threads + base
	return b.regs[off : off+lanes]
}

// predRow returns the contiguous lane view of one predicate for a warp.
func (b *blockState) predRow(p isa.PredReg, base, lanes int) []bool {
	off := int(p)*b.threads + base
	return b.preds[off : off+lanes]
}

type smState struct {
	warps     []*warpState // resident warps, in residency order
	liveWarps int
	lastPick  []int // per-scheduler round-robin cursor

	// quietUntil caches the earliest cycle any resident warp can issue
	// after a scan found the whole SM stalled; until then the per-cycle
	// scheduler scan is skipped. Warp stamps only move when a warp of
	// this SM issues (impossible while skipped) and new residents reset
	// the cache, so the skip is scheduling-exact. Like stallUntil, this
	// is a cache, not architectural state: images neither store nor
	// compare it.
	quietUntil int64

	// schedQuiet is the per-scheduler analogue of quietUntil: entry k
	// caches the earliest cycle any warp of stride class k (wi mod
	// SchedulersPerSM) can issue, set when a scan of the class found
	// every live, unbarriered warp data-stalled. Stamps of a skipped
	// class cannot move (its warps are not issuing), so the cache only
	// goes stale on events that change class membership or wake
	// excluded warps: block launch, retirement compaction, and barrier
	// release — each zeros the whole array. Like the other two caches
	// this never enters images or state comparison.
	schedQuiet []int64
}

// wakeSchedulers invalidates every per-scheduler quiet cache; called
// whenever warps join, leave, or un-barrier on the SM.
func (sm *smState) wakeSchedulers() {
	for i := range sm.schedQuiet {
		sm.schedQuiet[i] = 0
	}
}

// quiet computes the earliest cycle any warp of a fully stalled SM can
// issue again: the minimum stall cache over live, unbarriered warps. A
// probe-able warp (stall cache expired, e.g. it was issue-slot-blocked)
// makes the SM unskippable and returns 0.
func (sm *smState) quiet(cycle int64) int64 {
	q := int64(1) << 62
	for _, w := range sm.warps {
		if w.done || w.atBar {
			continue
		}
		if w.stallUntil <= cycle {
			return 0
		}
		if w.stallUntil < q {
			q = w.stallUntil
		}
	}
	return q
}

type engine struct {
	cfg  Config
	dev  *device.Device
	prog *isa.Program
	glob *mem.Global

	dec []decoded
	occ device.Occupancy

	sms        []smState
	nextBlock  int
	totalBlock int
	liveBlocks int

	cycle     int64
	maxCycles int64

	fault *FaultPlan
	// faultLane caches, for the instruction currently in exec, the lane
	// the armed fault targets (noFault when none); memory and MMA
	// handlers read it instead of taking a parameter per lane.
	faultLane int

	// Dynamic counters. laneOps is the unfiltered lane-operation clock;
	// filteredOps advances only on ops matching the fault plan's filter.
	laneOps     uint64
	filteredOps uint64
	perOpLane   [isa.OpCount]uint64
	warpInstrs  uint64

	activeWarpCycles uint64
	smCycles         uint64
	smsUsed          int

	// Residency counters (Profile.CtrlOps / LoadResidency /
	// DivResidency); recorded unconditionally — they are a handful of
	// integer adds on the issue path.
	ctrlOps       uint64
	loadResidency uint64
	divResidency  uint64

	// Timeline sampling state, nil unless Config.SampleTimeline. tl is
	// the fixed bucket array; bucket width is 1<<tlShift cycles and
	// doubles (folding adjacent pairs) when the launch outruns it. tlCur
	// caches the current cycle's bucket for the issue path.
	tl      []TimelineBucket
	tlShift uint
	tlCur   *TimelineBucket

	// slotBase is the per-unit issue-slot budget, precomputed once and
	// copied into the per-cycle slots array.
	slotBase [device.UnitCount]int

	// schedMask is SchedulersPerSM-1 when the scheduler count is a power
	// of two (every modeled device), letting the per-cycle scan compute
	// stride residues with a mask instead of integer division; -1 falls
	// back to the generic remainder.
	schedMask int

	// lean mirrors Config.LeanProfile for the issue path.
	lean bool

	// sharedZero is the one empty shared-memory instance every block of
	// a zero-shared-memory program aliases; with no addressable bytes it
	// is immutable, so sharing it is observationally identical to the 48
	// per-block allocations it replaces.
	sharedZero *mem.Shared

	// Sub-launch checkpointing (checkpoint.go). rec records golden
	// images during an instrumented golden run; golden/gIdx drive the
	// rejoin cutoff during a fault replay: once the fault has fired, the
	// replay compares its full state against the golden image captured
	// at the same cycle and stops early on a match.
	rec      *ImageRecorder
	golden   []*LaunchImage
	gIdx     int
	rejoined bool
	restored bool // engine state came from restoreImage, not a fresh launch

	// Fast-forward bookkeeping: when a whole cycle issues nothing, the
	// engine jumps to the earliest scoreboard-ready time instead of
	// spinning through memory-latency stalls cycle by cycle.
	issuedThisCycle int
	nextReady       int64

	due     string
	dueMode DUEMode

	// Launch arenas: block and warp state is carved from chunked slabs
	// so making a CTA resident costs a few bulk allocations amortized
	// over many blocks instead of ~10 small ones each. Chunks are never
	// recycled while the engine lives — carved slices stay valid and
	// arrive zeroed, exactly like the make calls they replace.
	u32Arena  []uint32
	boolArena []bool
	i64Arena  []int64
	wsArena   []warpState
	wpArena   []*warpState
	blkArena  []blockState
	simtArena []simtEntry

	// blkScratch is matchesImage's reusable block-collection buffer;
	// image compares run once per crossed golden image on every replay.
	blkScratch []*blockState
}

// carve cuts n zeroed elements off the arena, growing it by whole
// chunks of at least minChunk when exhausted.
func carve[T any](arena *[]T, n, minChunk int) []T {
	if len(*arena) < n {
		c := n
		if c < minChunk {
			c = minChunk
		}
		*arena = make([]T, c)
	}
	s := (*arena)[:n:n]
	*arena = (*arena)[n:]
	return s
}

func newEngine(cfg Config, global *mem.Global) (*engine, error) {
	e, err := prepEngine(cfg, global)
	if err != nil {
		return nil, err
	}
	// Initial wave: fill SMs round-robin up to the residency limit.
	for slot := 0; slot < e.occ.BlocksPerSM; slot++ {
		for s := range e.sms {
			e.launchNextBlock(&e.sms[s])
		}
	}
	return e, nil
}

// prepEngine builds an engine with no blocks launched; newEngine adds
// the initial residency wave, RunFrom restores an image instead.
func prepEngine(cfg Config, global *mem.Global) (*engine, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	dev, prog := cfg.Device, cfg.Program
	occ, err := dev.OccupancyFor(cfg.BlockThreads, prog.NumRegs, prog.SharedMem)
	if err != nil {
		return nil, fmt.Errorf("sim: launch of %s: %w", prog.Name, err)
	}
	e := &engine{
		cfg:        cfg,
		dev:        dev,
		prog:       prog,
		glob:       global,
		occ:        occ,
		totalBlock: cfg.GridX * cfg.GridY,
		maxCycles:  cfg.MaxCycles,
		fault:      cfg.Fault,
		rec:        cfg.Record,
		golden:     cfg.Golden,
		faultLane:  noFault,
	}
	if e.maxCycles == 0 {
		e.maxCycles = defaultMaxCycles
	}
	if cfg.SampleTimeline {
		e.tl = make([]TimelineBucket, TimelineBuckets)
	}
	e.dec, err = decodeFor(dev, prog)
	if err != nil {
		return nil, err
	}
	e.schedMask = -1
	if s := dev.SchedulersPerSM; s > 0 && s&(s-1) == 0 {
		e.schedMask = s - 1
	}
	for u := range e.slotBase {
		e.slotBase[u] = dev.IssueSlots(device.Unit(u))
	}
	e.lean = cfg.LeanProfile
	if prog.SharedMem == 0 {
		e.sharedZero = mem.NewShared(0)
	}
	e.sms = make([]smState, dev.NumSMs)
	// Two backing arrays for all SMs' cursors and caches instead of two
	// small allocations per SM: replays build a fresh engine each, so
	// setup allocations are on the campaign's critical path.
	ns := dev.SchedulersPerSM
	lp := make([]int, dev.NumSMs*ns)
	sq := make([]int64, dev.NumSMs*ns)
	for i := range e.sms {
		e.sms[i].lastPick = lp[i*ns : (i+1)*ns : (i+1)*ns]
		e.sms[i].schedQuiet = sq[i*ns : (i+1)*ns : (i+1)*ns]
	}
	return e, nil
}

// launchNextBlock makes the next pending CTA resident on the SM.
func (e *engine) launchNextBlock(sm *smState) {
	if e.nextBlock >= e.totalBlock {
		return
	}
	cta := e.nextBlock
	e.nextBlock++
	e.liveBlocks++

	nthreads := e.cfg.BlockThreads
	nwarps := (nthreads + 31) / 32
	nregs := e.prog.NumRegs
	if nregs < 1 {
		nregs = 1
	}
	blk := &carve(&e.blkArena, 1, 64)[0]
	*blk = blockState{
		cta:     cta,
		ctaX:    cta % e.cfg.GridX,
		ctaY:    cta / e.cfg.GridX,
		threads: nthreads,
		nregs:   nregs,
		regs:    carve(&e.u32Arena, nregs*nthreads, 1<<14),
		preds:   carve(&e.boolArena, 8*nthreads, 1<<13),
		shared:  e.sharedZero,
		warps:   carve(&e.wpArena, nwarps, 256)[:0],
	}
	if blk.shared == nil {
		blk.shared = mem.NewShared(e.prog.SharedMem)
	}
	pt := blk.preds[int(isa.PT)*nthreads : (int(isa.PT)+1)*nthreads]
	for t := range pt {
		pt[t] = true
	}
	ws := carve(&e.wsArena, nwarps, 128)
	for wi := 0; wi < nwarps; wi++ {
		lanes := 32
		if wi == nwarps-1 && nthreads%32 != 0 {
			lanes = nthreads % 32
		}
		full := uint32(1)<<lanes - 1
		if lanes == 32 {
			full = ^uint32(0)
		}
		// Stacks start with room for a few divergence levels in-arena;
		// deeper nesting falls back to append's reallocation.
		stk := carve(&e.simtArena, 4, 1024)
		stk[0] = simtEntry{mask: full, pc: 0, rpc: -1}
		w := &ws[wi]
		*w = warpState{
			block:         blk,
			widx:          wi,
			base:          wi * 32,
			lanes:         lanes,
			fullMask:      full,
			stack:         stk[:1],
			pendingReconv: -1,
			regReady:      carve(&e.i64Arena, nregs, 1<<12),
		}
		blk.warps = append(blk.warps, w)
		sm.warps = append(sm.warps, w)
	}
	blk.liveWarps = nwarps
	sm.liveWarps += nwarps
	sm.quietUntil = 0 // fresh residents: the SM must be scanned again
	sm.wakeSchedulers()
}

// retireWarp handles a fully exited warp.
func (e *engine) retireWarp(sm *smState, w *warpState) {
	if w.done {
		return
	}
	w.done = true
	e.issuedThisCycle++ // retirement is forward progress for deadlock detection
	sm.liveWarps--
	blk := w.block
	blk.liveWarps--
	e.checkBarrier(sm, blk)
	if blk.liveWarps == 0 {
		e.liveBlocks--
		// Compact the SM's warp list and backfill with a pending CTA.
		// Compaction renumbers the surviving warps across scheduler
		// stride classes, so the per-class quiet caches are void even
		// when no pending CTA backfills.
		kept := sm.warps[:0]
		for _, ww := range sm.warps {
			if ww.block != blk {
				kept = append(kept, ww)
			}
		}
		sm.warps = kept
		sm.wakeSchedulers()
		e.launchNextBlock(sm)
	}
}

func (e *engine) checkBarrier(sm *smState, blk *blockState) {
	if blk.liveWarps > 0 && blk.barWaiting >= blk.liveWarps {
		for _, w := range blk.warps {
			w.atBar = false
		}
		blk.barWaiting = 0
		// Barriered warps are excluded from the quiet caches; their
		// release makes every cached value for this SM stale.
		sm.wakeSchedulers()
	}
}

// raiseDUE records a detected unrecoverable error: the typed mechanism
// plus its human-readable detail. The detail string doubles as the
// "a DUE is pending" sentinel the scheduling loops poll, so it is never
// empty. Only the first raise of a run sticks.
func (e *engine) raiseDUE(mode DUEMode, format string, args ...any) {
	if e.due != "" {
		return
	}
	e.due = fmt.Sprintf(format, args...)
	e.dueMode = mode
}

// run executes the launch to completion or DUE.
func (e *engine) run() *Result {
	if !e.restored {
		for i := range e.sms {
			if len(e.sms[i].warps) > 0 {
				e.smsUsed++
			}
		}
	}
	var slots [device.UnitCount]int
	for e.liveBlocks > 0 || e.nextBlock < e.totalBlock {
		e.cycle++
		if e.cycle > e.maxCycles {
			e.raiseDUE(DUEHang, "watchdog timeout (hang)")
			break
		}
		e.issuedThisCycle = 0
		e.nextReady = int64(1) << 62
		if e.tl != nil {
			e.tlCur = e.bucketFor(e.cycle)
			e.tlCur.Cycles++
		}
		for s := range e.sms {
			sm := &e.sms[s]
			if sm.liveWarps == 0 {
				continue
			}
			e.smCycles++
			e.activeWarpCycles += uint64(sm.liveWarps)
			if e.tlCur != nil {
				e.tlCur.SMCycles++
				e.tlCur.ActiveWarpCycles += uint64(sm.liveWarps)
			}
			if sm.quietUntil > e.cycle {
				// Every warp here is stalled past this cycle; the cached
				// minimum feeds the fast-forward target exactly as a
				// full scan of the stalled warps would.
				if sm.quietUntil < e.nextReady {
					e.nextReady = sm.quietUntil
				}
				continue
			}
			slots = e.slotBase
			issuedBefore := e.issuedThisCycle
			for sched := 0; sched < e.dev.SchedulersPerSM; sched++ {
				if q := sm.schedQuiet[sched]; q > e.cycle {
					// Every warp of this stride class is stalled past
					// this cycle; the cached minimum feeds the
					// fast-forward target as a scan would.
					if q < e.nextReady {
						e.nextReady = q
					}
					continue
				}
				e.scheduleOne(sm, sched, slots[:])
				if e.due != "" {
					break
				}
			}
			if e.due != "" {
				break
			}
			if e.issuedThisCycle == issuedBefore {
				sm.quietUntil = sm.quiet(e.cycle)
			}
		}
		if e.due != "" {
			break
		}
		if e.issuedThisCycle == 0 && (e.liveBlocks > 0 || e.nextBlock < e.totalBlock) {
			// Every live warp is stalled. Jump to the earliest time the
			// scoreboard unblocks anyone, crediting the skipped cycles to
			// the occupancy accounting.
			if e.nextReady >= int64(1)<<62 {
				e.raiseDUE(DUEHang, "scheduler deadlock: no warp can ever issue")
				break
			}
			skip := e.nextReady - e.cycle - 1
			if skip > 0 {
				if e.cycle+skip > e.maxCycles {
					skip = e.maxCycles - e.cycle
				}
				var liveSMs int
				var liveW uint64
				for s := range e.sms {
					if lw := e.sms[s].liveWarps; lw > 0 {
						e.smCycles += uint64(skip)
						e.activeWarpCycles += uint64(skip) * uint64(lw)
						liveSMs++
						liveW += uint64(lw)
					}
				}
				if e.tl != nil {
					e.tlAddSpan(e.cycle+1, e.cycle+skip, liveSMs, liveW)
				}
				e.cycle += skip
			}
		}
		if e.rec != nil && e.laneOps >= e.rec.nextAt &&
			(e.liveBlocks > 0 || e.nextBlock < e.totalBlock) {
			e.rec.add(e.capture())
		}
		if e.golden != nil && e.fault != nil && e.fault.Fired {
			if e.tryRejoin() {
				break
			}
		}
	}

	res := &Result{
		RejoinedGolden: e.rejoined,
		Profile: Profile{
			Cycles:           e.cycle,
			WarpInstrs:       e.warpInstrs,
			LaneOps:          e.laneOps,
			PerOpLane:        make(map[isa.Op]uint64),
			ActiveWarpCycles: e.activeWarpCycles,
			SMCycles:         e.smCycles,
			SMsUsed:          e.smsUsed,
			CtrlOps:          e.ctrlOps,
			LoadResidency:    e.loadResidency,
			DivResidency:     e.divResidency,
		},
	}
	if e.tl != nil {
		res.Profile.Timeline = Timeline{
			BucketWidth: int64(1) << e.tlShift,
			Buckets:     e.tl,
		}
	}
	for op, n := range e.perOpLane {
		if n > 0 {
			res.Profile.PerOpLane[isa.Op(op)] = n
		}
	}
	if e.due != "" {
		res.Outcome = OutcomeDUE
		res.DUEMode = e.dueMode
		res.DUEReason = e.due
	}
	return res
}

// scheduleOne lets one scheduler pick a warp and issue up to
// IssuePerScheduler instructions from it. Warp wi belongs to scheduler
// wi%SchedulersPerSM, so the round-robin scan strides by the scheduler
// count in two segments (cursor..end, then front..cursor) instead of
// probing every warp; the order of candidates visited is identical to
// the modular scan this replaces.
func (e *engine) scheduleOne(sm *smState, sched int, slots []int) {
	n := len(sm.warps)
	if n == 0 {
		return
	}
	s := e.dev.SchedulersPerSM
	// start = lastPick % n and first = next index ≥ start in this
	// scheduler's stride class, both without integer division: the
	// cursor only exceeds n after retirement compaction (subtract
	// loop), and the stride residue is a mask for power-of-two
	// scheduler counts. Division here dominated whole-launch runtime.
	start := sm.lastPick[sched]
	for start >= n {
		start -= n
	}
	var k int
	if e.schedMask >= 0 {
		k = (sched - start) & e.schedMask
	} else {
		k = (sched - start) % s
		if k < 0 {
			k += s
		}
	}
	first := start + k
	cycle := e.cycle
	// A fruitless scan feeds the per-scheduler quiet cache: q gathers
	// the earliest unblock time over the class's stalled warps, and
	// probeable records whether any warp evaded the stall caches (e.g.
	// slot-blocked, freshly retired) and so must be probed next cycle.
	q := int64(1) << 62
	probeable := false
	for wi := first; wi < n; wi += s {
		// Warp retirement compacts sm.warps mid-scan; skip stale indices.
		if wi >= len(sm.warps) {
			continue
		}
		// Cheap skips inlined here so a stalled warp costs a few loads
		// per probe instead of a call into the issue path. A data-stalled
		// warp contributes its cached unblock time to the fast-forward
		// target exactly as the full dependency walk would.
		w := sm.warps[wi]
		if w.done || w.atBar {
			continue
		}
		if su := w.stallUntil; su > cycle {
			if su < e.nextReady {
				e.nextReady = su
			}
			if su < q {
				q = su
			}
			continue
		}
		if e.tryWarp(sm, sched, wi, w, slots) {
			return
		}
		if su := w.stallUntil; su > cycle {
			if su < q {
				q = su
			}
		} else {
			probeable = true
		}
	}
	for wi := sched; wi < start; wi += s {
		if wi >= len(sm.warps) {
			continue
		}
		w := sm.warps[wi]
		if w.done || w.atBar {
			continue
		}
		if su := w.stallUntil; su > cycle {
			if su < e.nextReady {
				e.nextReady = su
			}
			if su < q {
				q = su
			}
			continue
		}
		if e.tryWarp(sm, sched, wi, w, slots) {
			return
		}
		if su := w.stallUntil; su > cycle {
			if su < q {
				q = su
			}
		} else {
			probeable = true
		}
	}
	if !probeable {
		sm.schedQuiet[sched] = q
	}
}

// tryWarp attempts to issue from warp wi, which the caller has already
// screened (live, not at a barrier, not data-stalled); it returns true
// when the scheduler's pick is consumed (something issued) and the scan
// stops.
func (e *engine) tryWarp(sm *smState, sched, wi int, w *warpState, slots []int) bool {
	top := w.effTop()
	if top == nil {
		e.retireWarp(sm, w)
		return false
	}
	if !e.ready(w, top, slots) {
		return false
	}
	// The readiness just established covers the first issue directly; only
	// dual-issue re-derives the (changed) next instruction and re-checks.
	issued := 0
	for {
		ctrl := e.issue(sm, w, top, slots)
		issued++
		if ctrl || e.due != "" {
			break // do not dual-issue past control flow
		}
		if issued >= e.dev.IssuePerScheduler {
			break
		}
		// A non-control issue leaves the stack, mask, and exited set
		// untouched and only advances top.pc, so top stays the active
		// entry unless the new pc reached its reconvergence point.
		if top.pc == top.rpc {
			top = w.effTop()
			if top == nil {
				e.retireWarp(sm, w)
				break
			}
		}
		if w.atBar || !e.ready(w, top, slots) {
			break
		}
	}
	sm.lastPick[sched] = wi + 1
	return true
}

// ready checks scoreboard and issue-slot availability for the warp's next
// instruction. The decoded wait list holds every scoreboarded register
// (source spans plus destinations) pre-expanded, so the check is one
// flat loop.
func (e *engine) ready(w *warpState, top *simtEntry, slots []int) bool {
	if int(top.pc) >= len(e.dec) {
		return true // will fault at issue
	}
	d := &e.dec[top.pc]
	if slots[d.unit] <= 0 {
		return false
	}
	now := e.cycle
	if w.maxStamp <= now {
		return true // every stamp of this warp has already cleared
	}
	stall := int64(1) << 62
	rr := w.regReady
	for _, r := range d.wait {
		if t := rr[r]; t > now && t < stall {
			stall = t
		}
	}
	in := d.in
	if in.Pred != isa.PT {
		if t := w.predReady[in.Pred]; t > now && t < stall {
			stall = t
		}
	}
	if d.readsP != isa.PT {
		if t := w.predReady[d.readsP]; t > now && t < stall {
			stall = t
		}
	}
	if d.writesP && in.DstP != isa.PT {
		if t := w.predReady[in.DstP]; t > now && t < stall {
			stall = t
		}
	}
	if stall < int64(1)<<62 {
		// The earliest blocking stamp is both the fast-forward
		// contribution (the global minimum the original per-dependency
		// collection produced) and the stall cache for later probes.
		w.stallUntil = stall
		if stall < e.nextReady {
			e.nextReady = stall
		}
		return false
	}
	return true
}

// issue executes one warp-instruction. It returns true when the
// instruction was control flow (ends a dual-issue pair).
func (e *engine) issue(sm *smState, w *warpState, top *simtEntry, slots []int) bool {
	pc := top.pc
	if int(pc) >= len(e.dec) || pc < 0 {
		e.raiseDUE(DUEHang, "instruction fetch beyond program end (pc=%d)", pc)
		return true
	}
	d := &e.dec[pc]
	in := d.in
	slots[d.unit]--
	w.stallUntil = 0 // pc and stamps change below: invalidate the stall cache
	e.warpInstrs++
	e.issuedThisCycle++
	// Residency accounting: every entry above the warp's base stack
	// frame is live divergence state held while this instruction issues;
	// an issued load holds an LDST-queue/MSHR entry for its latency.
	if !e.lean {
		div := uint64(len(w.stack) - 1)
		e.divResidency += div
		var load uint64
		if in.Op.IsLoad() {
			load = uint64(d.latency)
			e.loadResidency += load
		}
		if e.tlCur != nil {
			e.tlCur.Issued++
			e.tlCur.DivResidency += div
			e.tlCur.LoadResidency += load
		}
	}
	if e.cfg.Trace != nil {
		fmt.Fprintf(e.cfg.Trace, "%8d cta%03d w%02d /*%04d*/ %s\n",
			e.cycle, w.block.cta, w.widx, pc, in.String())
	}

	// Guard evaluation per lane.
	active := top.mask &^ w.exited
	if in.Pred != isa.PT {
		var pm uint32
		pr := w.block.predRow(in.Pred, w.base, w.lanes)
		for lane, bit := 0, uint32(1); lane < len(pr); lane, bit = lane+1, bit<<1 {
			if active&bit != 0 && pr[lane] != in.PredNeg {
				pm |= bit
			}
		}
		if d.class != classCtrl {
			active = pm
		} else {
			// Control flow interprets the predicate itself (BRA).
			return e.control(sm, w, top, in, active, pm)
		}
	} else if d.class == classCtrl {
		return e.control(sm, w, top, in, active, active)
	}

	// Dynamic counting and fault triggering happen on executed lanes.
	lanes := bits.OnesCount32(active)
	if !e.lean {
		e.perOpLane[d.op] += uint64(lanes)
	}
	faultLane := e.armFault(d.op, active, lanes)
	e.laneOps += uint64(lanes)

	if active != 0 && faultLane != skipWholeInstr {
		e.exec(w, d, active, faultLane)
	}
	// Scoreboard updates.
	for r := d.dstBase; r < d.dstBase+isa.Reg(d.dstN); r++ {
		if r != isa.RZ {
			w.regReady[r] = e.cycle + d.latency
		}
	}
	if d.writesP && in.DstP != isa.PT {
		w.predReady[in.DstP] = e.cycle + d.latency
	}
	if d.dstN > 0 || d.writesP {
		if st := e.cycle + d.latency; st > w.maxStamp {
			w.maxStamp = st
		}
	}
	top.pc = pc + 1
	return false
}

const (
	noFault        = -1
	skipWholeInstr = -2
)

// armFault advances the fault-trigger clocks and returns the lane (bit
// position) on which an operation-targeted fault fires during this
// warp-instruction, noFault when none, or skipWholeInstr for FaultSkip.
// Storage faults are applied immediately here.
func (e *engine) armFault(op isa.Op, active uint32, lanes int) int {
	f := e.fault
	if f == nil || f.Fired {
		return noFault
	}
	switch f.Kind {
	case FaultRFBit, FaultSharedBit, FaultGlobalBit:
		if e.laneOps+uint64(lanes) > f.TriggerIndex {
			e.applyStorageFault()
		}
		return noFault
	}
	if !f.matches(op) {
		return noFault
	}
	idx := e.filteredOps
	e.filteredOps += uint64(lanes)
	if f.TriggerIndex >= idx && f.TriggerIndex < idx+uint64(lanes) {
		f.Fired = true
		if f.Kind == FaultSkip {
			return skipWholeInstr
		}
		// Map the offset to the n-th active lane.
		nth := int(f.TriggerIndex - idx)
		for lane := 0; lane < 32; lane++ {
			if active&(1<<lane) != 0 {
				if nth == 0 {
					return lane
				}
				nth--
			}
		}
	}
	return noFault
}

// applyStorageFault flips the planned storage bit if its target is
// resident; otherwise the strike lands on dead state (Landed stays false
// and the campaign counts it as masked by construction).
func (e *engine) applyStorageFault() {
	f := e.fault
	f.Fired = true
	switch f.Kind {
	case FaultGlobalBit:
		e.glob.FlipBit(f.BitIdx)
		f.Landed = true
	case FaultRFBit, FaultSharedBit:
		blk := e.findResident(f.Block)
		if blk == nil {
			return // target CTA not resident: strike hits dead state
		}
		if f.Kind == FaultSharedBit {
			blk.shared.FlipBit(f.BitIdx)
			f.Landed = true
			return
		}
		t := f.Thread % blk.threads
		r := f.Reg % blk.nregs
		blk.regs[r*blk.threads+t] ^= 1 << (f.Bit & 31)
		f.Landed = true
	}
}

func (e *engine) findResident(cta int) *blockState {
	for s := range e.sms {
		for _, w := range e.sms[s].warps {
			if w.block.cta == cta {
				return w.block
			}
		}
	}
	return nil
}

// control executes control-flow instructions. predMask holds the lanes
// (within active) where the guard predicate evaluated true.
func (e *engine) control(sm *smState, w *warpState, top *simtEntry, in *isa.Instr, active, predMask uint32) bool {
	e.laneOps += uint64(bits.OnesCount32(active))
	if !e.lean {
		e.perOpLane[in.Op] += uint64(bits.OnesCount32(active))
		// Fetch-redirect accounting: a taken BRA and a SYNC jump move
		// the warp's fetch stream to a non-sequential PC; SSY/BAR/EXIT
		// fall through. This is the measured counterpart of the static
		// model's fetch-exposure proxy.
		switch in.Op {
		case isa.OpBRA:
			if predMask != 0 {
				e.ctrlOps++
				if e.tlCur != nil {
					e.tlCur.CtrlOps++
				}
			}
		case isa.OpSYNC:
			e.ctrlOps++
			if e.tlCur != nil {
				e.tlCur.CtrlOps++
			}
		}
	}
	pc := top.pc
	switch in.Op {
	case isa.OpSSY:
		w.pendingReconv = int32(in.Target)
		top.pc = pc + 1
	case isa.OpBRA:
		taken := predMask
		rpc := w.pendingReconv
		w.pendingReconv = -1
		switch {
		case taken == 0:
			top.pc = pc + 1
		case taken == active:
			top.pc = int32(in.Target)
		default:
			if rpc < 0 {
				rpc = pc + 1
			}
			if len(w.stack) >= maxSIMTDepth {
				e.raiseDUE(DUESyncError, "divergence stack overflow")
				return true
			}
			top.pc = rpc
			w.stack = append(w.stack,
				simtEntry{mask: active &^ taken, pc: pc + 1, rpc: rpc},
				simtEntry{mask: taken, pc: int32(in.Target), rpc: rpc},
			)
		}
	case isa.OpSYNC:
		if top.rpc < 0 {
			e.raiseDUE(DUESyncError, "SYNC outside divergent region")
			return true
		}
		top.pc = top.rpc
	case isa.OpBAR:
		if active != w.fullMask&^w.exited {
			e.raiseDUE(DUESyncError, "barrier with divergent warp")
			return true
		}
		w.atBar = true
		w.block.barWaiting++
		e.checkBarrier(sm, w.block)
		top.pc = pc + 1
	case isa.OpEXIT:
		w.exited |= predMask
		top.pc = pc + 1
		if w.exited == w.fullMask {
			e.retireWarp(sm, w)
		}
	default:
		e.raiseDUE(DUEUnattributed, "unhandled control op %s", in.Op)
	}
	return true
}

// bucketFor returns the timeline bucket covering the cycle, folding the
// array (doubling the bucket width) as often as needed to keep the
// index inside the fixed bucket count.
func (e *engine) bucketFor(cycle int64) *TimelineBucket {
	idx := (cycle - 1) >> e.tlShift
	for idx >= TimelineBuckets {
		e.foldTimeline()
		idx = (cycle - 1) >> e.tlShift
	}
	return &e.tl[idx]
}

// foldTimeline merges adjacent bucket pairs into the front half of the
// array and doubles the bucket width, keeping memory O(1) per launch.
func (e *engine) foldTimeline() {
	for i := 0; i < TimelineBuckets/2; i++ {
		a, b := &e.tl[2*i], &e.tl[2*i+1]
		e.tl[i] = TimelineBucket{
			Cycles:           a.Cycles + b.Cycles,
			SMCycles:         a.SMCycles + b.SMCycles,
			ActiveWarpCycles: a.ActiveWarpCycles + b.ActiveWarpCycles,
			Issued:           a.Issued + b.Issued,
			CtrlOps:          a.CtrlOps + b.CtrlOps,
			LoadResidency:    a.LoadResidency + b.LoadResidency,
			DivResidency:     a.DivResidency + b.DivResidency,
		}
	}
	for i := TimelineBuckets / 2; i < TimelineBuckets; i++ {
		e.tl[i] = TimelineBucket{}
	}
	e.tlShift++
}

// tlAddSpan credits a fast-forwarded cycle span [from, to] to the
// timeline, walking whole buckets instead of individual cycles so a
// long memory stall costs O(buckets touched), not O(cycles skipped).
func (e *engine) tlAddSpan(from, to int64, liveSMs int, liveWarps uint64) {
	for c := from; c <= to; {
		b := e.bucketFor(c)
		width := int64(1) << e.tlShift
		bucketEnd := ((c-1)/width + 1) * width // last cycle this bucket covers
		n := to - c + 1
		if span := bucketEnd - c + 1; span < n {
			n = span
		}
		b.Cycles += n
		b.SMCycles += uint64(n) * uint64(liveSMs)
		b.ActiveWarpCycles += uint64(n) * liveWarps
		c += n
	}
}
