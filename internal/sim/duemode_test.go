package sim

import (
	"encoding/json"
	"testing"
)

// Every countable mode (plus the DUENone zero value) must round-trip
// through String/ParseDUEMode and through the text marshaling JSON map
// keys use.
func TestDUEModeRoundTrip(t *testing.T) {
	for m := DUEMode(0); m < DUEModeCount; m++ {
		s := m.String()
		if s == "" {
			t.Fatalf("mode %d has no name", m)
		}
		back, err := ParseDUEMode(s)
		if err != nil {
			t.Fatalf("ParseDUEMode(%q): %v", s, err)
		}
		if back != m {
			t.Fatalf("ParseDUEMode(%q) = %v, want %v", s, back, m)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var jm DUEMode
		if err := json.Unmarshal(data, &jm); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if jm != m {
			t.Fatalf("JSON round-trip of %v gave %v", m, jm)
		}
	}
	if _, err := ParseDUEMode("no-such-mode"); err == nil {
		t.Fatal("ParseDUEMode must reject unknown names")
	}
	if len(DUEModes()) != int(DUEModeCount)-1 {
		t.Fatalf("DUEModes() lists %d modes, want %d (all but DUENone)",
			len(DUEModes()), int(DUEModeCount)-1)
	}
	for _, m := range DUEModes() {
		if m == DUENone {
			t.Fatal("DUEModes() must not list DUENone")
		}
	}
}
