package sim

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
)

// Runtime residency telemetry. The engine samples, per cycle bucket, the
// occupancy of the management structures the hidden-resource model cares
// about: scheduler issue slots, outstanding-load (LDST queue) state,
// divergence-stack depth, and fetch/control-transfer activity. The
// per-launch Timeline keeps a fixed bucket count — when a launch outruns
// the current bucket width, adjacent buckets are folded pairwise and the
// width doubles — so memory stays O(1) per launch regardless of cycle
// count. Sampling is requested via Config.SampleTimeline (golden runs);
// fault campaigns leave it off and pay nothing in the hot loop.

// TimelineBuckets is the fixed per-launch bucket count. 64 buckets give
// the consumers (profiler, residency report) enough phase resolution to
// see prologue/steady-state/drain transitions while keeping a launch's
// telemetry footprint constant.
const TimelineBuckets = 64

// TimelineBucket accumulates the engine's residency counters over one
// bucket of device cycles.
type TimelineBucket struct {
	// Cycles is the device-cycle span the bucket actually covers (the
	// bucket width, clipped at the end of the run).
	Cycles int64

	// SMCycles and ActiveWarpCycles are the bucket's slice of the
	// Profile-level occupancy accounting.
	SMCycles         uint64
	ActiveWarpCycles uint64

	// Issued counts warp-instructions issued in the bucket (scheduler
	// slot activity); CtrlOps the subset that redirected the fetch
	// stream (BRA/SSY/SYNC).
	Issued  uint64
	CtrlOps uint64

	// LoadResidency integrates outstanding-load state: each issued load
	// contributes its full latency (the cycles its LDST-queue/MSHR entry
	// stays allocated). DivResidency integrates reconvergence-stack
	// depth: each issued warp-instruction contributes the number of
	// divergence entries live under it.
	LoadResidency uint64
	DivResidency  uint64
}

// Timeline is the per-launch residency sample series.
type Timeline struct {
	// BucketWidth is the device-cycle width of each bucket (a power of
	// two; the engine doubles it whenever the launch outruns the fixed
	// bucket count).
	BucketWidth int64
	Buckets     []TimelineBucket
}

// Residency summarizes measured hidden-structure occupancies of a
// profile (one launch, or a workload aggregate built by Aggregate). All
// rates are zero for an empty profile — no launch divides by zero.
type Residency struct {
	// SchedUtil is the fraction of scheduler issue slots that issued a
	// warp-instruction, per active SM-cycle.
	SchedUtil float64
	// FetchRate is the fraction of issued warp-instructions that
	// redirected the fetch stream (taken the control path).
	FetchRate float64
	// DivDepth is the mean number of live divergence-stack entries per
	// issued warp-instruction.
	DivDepth float64
	// LoadDepth is the mean number of outstanding loads per active
	// warp-cycle (LDST-queue/MSHR occupancy per resident warp).
	LoadDepth float64
	// WarpsPerSMCycle is the mean number of resident warps per active
	// SM-cycle (the per-warp hidden state the strike rate scales with).
	WarpsPerSMCycle float64
	// SMCyclesPerCycle is the mean number of active SMs per device cycle
	// (the per-SM hidden state floor).
	SMCyclesPerCycle float64
}

// Residency derives the measured occupancies from the profile's
// residency counters. Every ratio guards its denominator, so the zero
// Profile (an empty-grid or zero-cycle launch) yields all zeros rather
// than NaN/Inf.
func (p *Profile) Residency(dev *device.Device) Residency {
	var r Residency
	if p.SMCycles > 0 {
		r.SchedUtil = float64(p.WarpInstrs) / (float64(p.SMCycles) * float64(dev.SchedulersPerSM))
		r.WarpsPerSMCycle = float64(p.ActiveWarpCycles) / float64(p.SMCycles)
	}
	if p.Cycles > 0 {
		r.SMCyclesPerCycle = float64(p.SMCycles) / float64(p.Cycles)
	}
	if p.WarpInstrs > 0 {
		r.FetchRate = float64(p.CtrlOps) / float64(p.WarpInstrs)
		r.DivDepth = float64(p.DivResidency) / float64(p.WarpInstrs)
	}
	if p.ActiveWarpCycles > 0 {
		r.LoadDepth = float64(p.LoadResidency) / float64(p.ActiveWarpCycles)
	}
	return r
}

// Aggregate sums per-launch profiles into one workload-level profile, so
// callers derive workload metrics (IPC, occupancy, residency) from the
// same accessors a single launch uses. Timelines stay per-launch and are
// not merged; SMsUsed carries the widest launch.
func Aggregate(profiles []Profile) Profile {
	a := Profile{PerOpLane: make(map[isa.Op]uint64)}
	for i := range profiles {
		p := &profiles[i]
		a.Cycles += p.Cycles
		a.WarpInstrs += p.WarpInstrs
		a.LaneOps += p.LaneOps
		a.ActiveWarpCycles += p.ActiveWarpCycles
		a.SMCycles += p.SMCycles
		a.CtrlOps += p.CtrlOps
		a.LoadResidency += p.LoadResidency
		a.DivResidency += p.DivResidency
		if p.SMsUsed > a.SMsUsed {
			a.SMsUsed = p.SMsUsed
		}
		for op, n := range p.PerOpLane {
			a.PerOpLane[op] += n
		}
	}
	return a
}
