// Instruction decode: per-instruction metadata the scheduler consults
// every cycle, the operand pre-resolution that lets ALU handlers run as
// contiguous 32-lane slice loops, and the handler jump table that
// replaces the per-issue opcode switch.
//
// Decoded programs are immutable at runtime, so they are memoized per
// (program, device) pair: a fault campaign replays the same launch
// thousands of times and pays for decode once.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpurel/internal/device"
	"gpurel/internal/isa"
)

// execFn is an op handler selected at decode time; together the
// handlers form the jump table that replaces the three-level opcode
// switch the engine used to evaluate on every issued instruction.
type execFn func(e *engine, w *warpState, d *decoded, active uint32)

// instrClass routes fault modeling: ALU faults divert the instruction to
// the generic per-lane fallback, memory and MMA handlers model their
// faults internally, control flow never reaches exec.
type instrClass uint8

const (
	classALU instrClass = iota
	classMem
	classMMA
	classCtrl
)

// srcKind tells operand resolution how a source's Neg modifier acts:
// integer negation, an IEEE sign flip at 32/64 bits, or a sign flip
// applied only after F16→F32 widening.
type srcKind uint8

const (
	srcRaw srcKind = iota // operand read as raw bits, Neg ignored
	srcInt
	srcF32
	srcF64
	srcF16
)

// srcRef is a source operand resolved at decode time. Register operands
// carry the SoA row index plus the negation to apply per lane;
// immediates and RZ become broadcast rows with the negation already
// folded in (except FP16, whose negation acts on the widened value).
type srcRef struct {
	reg    int32 // SoA register row, or -1 when bc/bcHi broadcast rows apply
	ineg   bool
	fneg   uint32
	fneg64 uint64
	bc     *[32]uint32
	bcHi   *[32]uint32 // high word of 64-bit immediates (and RZ pairs)
}

// decoded caches everything the scheduler and the exec handlers need so
// the per-issue path does no per-opcode or per-operand decision making.
type decoded struct {
	in      *isa.Instr
	op      isa.Op
	class   instrClass
	unit    device.Unit
	latency int64
	dstBase isa.Reg
	dstN    int
	wait    []isa.Reg // scoreboard registers (source spans + destinations)
	writesP bool
	readsP  isa.PredReg // PT when none beyond the guard
	run     execFn
	src     [3]srcRef
}

// row returns the warp's contiguous lane view of source operand i:
// either a slice of the block's SoA register file or the operand's
// broadcast row.
func (d *decoded) row(b *blockState, w *warpState, i int) []uint32 {
	s := &d.src[i]
	if s.reg < 0 {
		return s.bc[:w.lanes]
	}
	off := int(s.reg)*b.threads + w.base
	return b.regs[off : off+w.lanes]
}

// rowHi returns the high-word row of a 64-bit source operand.
func (d *decoded) rowHi(b *blockState, w *warpState, i int) []uint32 {
	s := &d.src[i]
	if s.reg < 0 {
		return s.bcHi[:w.lanes]
	}
	off := (int(s.reg)+1)*b.threads + w.base
	return b.regs[off : off+w.lanes]
}

// dstRow returns the warp's destination row (nil for RZ).
func (d *decoded) dstRow(b *blockState, w *warpState) []uint32 {
	if d.dstBase == isa.RZ {
		return nil
	}
	off := int(d.dstBase)*b.threads + w.base
	return b.regs[off : off+w.lanes]
}

// dstRowHi returns the second register row of a 64-bit destination.
func (d *decoded) dstRowHi(b *blockState, w *warpState) []uint32 {
	off := (int(d.dstBase)+1)*b.threads + w.base
	return b.regs[off : off+w.lanes]
}

var zeroRow [32]uint32

func broadcastRow(v uint32) *[32]uint32 {
	if v == 0 {
		return &zeroRow
	}
	row := new([32]uint32)
	for i := range row {
		row[i] = v
	}
	return row
}

// resolveSrc folds an operand into a srcRef. Negation folds into the
// broadcast value where that is bit-exact (integer two's complement,
// IEEE sign flip); FP16 keeps the sign flip for after widening, matching
// the reference semantics of h16src.
func resolveSrc(o isa.Operand, neg bool, kind srcKind) srcRef {
	if !o.IsImm && o.Reg != isa.RZ {
		s := srcRef{reg: int32(o.Reg)}
		if neg {
			switch kind {
			case srcInt:
				s.ineg = true
			case srcF32, srcF16:
				s.fneg = 1 << 31
			case srcF64:
				s.fneg64 = 1 << 63
			}
		}
		return s
	}
	v := uint32(0)
	if o.IsImm {
		v = o.Imm
	}
	var hi uint32
	s := srcRef{reg: -1}
	if neg {
		switch kind {
		case srcInt:
			v = uint32(-int32(v))
		case srcF32:
			v ^= 1 << 31
		case srcF64:
			hi ^= 1 << 31
		case srcF16:
			s.fneg = 1 << 31
		}
	}
	s.bc = broadcastRow(v)
	s.bcHi = broadcastRow(hi)
	return s
}

type decodeKey struct {
	prog *isa.Program
	dev  *device.Device
}

// decCache memoizes decoded programs per (program, device). Decoded
// slices are read-only after construction, so engines share them. The
// cache is cleared wholesale past decCacheMax entries so builders that
// assemble programs in a loop (benchmarks, the opt matrix) do not pin
// every program they ever built.
var (
	decCache    sync.Map
	decCacheLen atomic.Int64
)

const decCacheMax = 512

func decodeFor(dev *device.Device, prog *isa.Program) ([]decoded, error) {
	key := decodeKey{prog, dev}
	if v, ok := decCache.Load(key); ok {
		return v.([]decoded), nil
	}
	dec, err := decodeProgram(dev, prog)
	if err != nil {
		return nil, err
	}
	if decCacheLen.Add(1) > decCacheMax {
		decCache.Range(func(k, _ any) bool {
			decCache.Delete(k)
			return true
		})
		decCacheLen.Store(1)
	}
	decCache.Store(key, dec)
	return dec, nil
}

func decodeProgram(dev *device.Device, prog *isa.Program) ([]decoded, error) {
	dec := make([]decoded, len(prog.Instrs))
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		d := &dec[i]
		d.in = in
		d.op = in.Op
		d.unit = dev.UnitFor(in.Op)
		d.latency = int64(dev.Latency(in.Op))
		d.dstBase = in.Dst
		d.dstN = in.DstRegs()
		d.readsP = isa.PT
		if dev.UnitsPerSM[d.unit] == 0 {
			return nil, fmt.Errorf("sim: %s uses %s, which %s has no %s units for",
				prog.Name, in.Op, dev.Name, d.unit)
		}
		for _, span := range in.SrcRegSpans() {
			for r := span[0]; r < span[0]+span[1]; r++ {
				d.wait = append(d.wait, r)
			}
		}
		for r := d.dstBase; r < d.dstBase+isa.Reg(d.dstN); r++ {
			if r != isa.RZ {
				d.wait = append(d.wait, r)
			}
		}
		switch in.Op {
		case isa.OpISETP, isa.OpFSETP, isa.OpDSETP, isa.OpHSETP:
			d.writesP = true
		case isa.OpSEL:
			d.readsP = in.DstP
		}
		resolve(d)
	}
	return dec, nil
}

// resolve assigns the handler and pre-resolves source operands. Modifier
// variants (logic op, shift direction, conversion pair) pick distinct
// handlers here, so the issue path never re-inspects them.
func resolve(d *decoded) {
	in := d.in
	d.class = classALU
	raw := func(i int) { d.src[i] = resolveSrc(in.Srcs[i], false, srcRaw) }
	neg := func(n int, kind srcKind) {
		for i := 0; i < n; i++ {
			d.src[i] = resolveSrc(in.Srcs[i], in.Neg[i], kind)
		}
	}
	switch in.Op {
	case isa.OpBRA, isa.OpSSY, isa.OpSYNC, isa.OpBAR, isa.OpEXIT:
		d.class = classCtrl
		return
	case isa.OpHMMA, isa.OpFMMA:
		d.class = classMMA
		d.run = execMMA
		return
	case isa.OpLDG, isa.OpLDS, isa.OpSTG, isa.OpSTS, isa.OpRED:
		d.class = classMem
		raw(0) // address
		switch in.Op {
		case isa.OpLDG:
			d.run = execLDG
		case isa.OpLDS:
			d.run = execLDS
		case isa.OpSTG:
			d.run = execSTG
		case isa.OpSTS:
			d.run = execSTS
		case isa.OpRED:
			d.run = execRED
		}
		return
	}

	switch in.Op {
	case isa.OpNOP:
		d.run = execNop
	case isa.OpMOV, isa.OpMOV32I:
		raw(0)
		d.run = execMOV
	case isa.OpSEL:
		raw(0)
		raw(1)
		d.run = execSEL
	case isa.OpS2R:
		d.run = execS2R
	case isa.OpFADD:
		neg(2, srcF32)
		d.run = execFADD
	case isa.OpFMUL:
		neg(2, srcF32)
		d.run = execFMUL
	case isa.OpFFMA:
		neg(3, srcF32)
		d.run = execFFMA
	case isa.OpDADD:
		neg(2, srcF64)
		d.run = execDADD
	case isa.OpDMUL:
		neg(2, srcF64)
		d.run = execDMUL
	case isa.OpDFMA:
		neg(3, srcF64)
		d.run = execDFMA
	case isa.OpHADD:
		neg(2, srcF16)
		d.run = execHADD
	case isa.OpHMUL:
		neg(2, srcF16)
		d.run = execHMUL
	case isa.OpHFMA:
		neg(3, srcF16)
		d.run = execHFMA
	case isa.OpIADD:
		neg(2, srcInt)
		d.run = execIADD
	case isa.OpIMUL:
		neg(2, srcInt)
		d.run = execIMUL
	case isa.OpIMAD:
		neg(3, srcInt)
		d.run = execIMAD
	case isa.OpIMNMX:
		raw(0)
		raw(1)
		d.run = execIMNMX
	case isa.OpLOP:
		raw(0)
		raw(1)
		switch in.Logic {
		case isa.LopAND:
			d.run = execLOPAND
		case isa.LopOR:
			d.run = execLOPOR
		default:
			d.run = execLOPXOR
		}
	case isa.OpSHF:
		raw(0)
		raw(1)
		if in.Shift == isa.ShiftL {
			d.run = execSHFL
		} else {
			d.run = execSHFR
		}
	case isa.OpISETP:
		raw(0)
		raw(1)
		d.run = execISETP
	case isa.OpFSETP:
		raw(0)
		raw(1)
		d.run = execFSETP
	case isa.OpDSETP:
		raw(0)
		raw(1)
		d.run = execDSETP
	case isa.OpHSETP:
		raw(0)
		raw(1)
		d.run = execHSETP
	case isa.OpF2F:
		raw(0)
		switch {
		case in.CvtFrom == isa.F32 && in.CvtTo == isa.F64:
			d.run = execF2F_32to64
		case in.CvtFrom == isa.F64 && in.CvtTo == isa.F32:
			d.run = execF2F_64to32
		case in.CvtFrom == isa.F32 && in.CvtTo == isa.F16:
			d.run = execF2F_32to16
		case in.CvtFrom == isa.F16 && in.CvtTo == isa.F32:
			d.run = execF2F_16to32
		case in.CvtFrom == isa.F64 && in.CvtTo == isa.F16:
			d.run = execF2F_64to16
		case in.CvtFrom == isa.F16 && in.CvtTo == isa.F64:
			d.run = execF2F_16to64
		default:
			d.run = execF2FBad
		}
	case isa.OpF2I:
		raw(0)
		d.run = execF2I
	case isa.OpI2F:
		raw(0)
		d.run = execI2F
	case isa.OpMUFU:
		raw(0)
		d.run = execMUFU
	default:
		d.run = execUnimplemented
		return
	}

	// Results discarded into RZ (or PT for the SETPs) have no
	// architectural effect on the fast path, so the handler collapses to
	// a no-op. Faulted instances still take the generic per-lane
	// fallback, which models the register-index redirect and the
	// fired-bit bookkeeping exactly as before.
	if d.writesP {
		if in.DstP == isa.PT {
			d.run = execNop
		}
	} else if in.Op != isa.OpNOP && in.Dst == isa.RZ {
		d.run = execNop
	}
}
