package core

import (
	"os"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/patterns"
	"gpurel/internal/suite"
)

// tinyOpts keeps the end-to-end study test affordable; statistical
// assertions below are correspondingly loose.
func tinyOpts() Options {
	return Options{
		MicroTrials: 40, CodeTrials: 30,
		SassifiPerClass: 10, NVBitFITotal: 40, MicroAVFFaults: 15,
		Seed: 3,
	}
}

func TestDeviceStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full device study is expensive")
	}
	ds, err := RunDevice(device.K40c(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Finalize(nil); err != nil {
		t.Fatal(err)
	}

	// Every Table I code is profiled.
	if len(ds.Profiles) != len(suite.Kepler()) {
		t.Fatalf("profiled %d codes, want %d", len(ds.Profiles), len(suite.Kepler()))
	}
	// Figure 3: all eight Kepler micros measured.
	if len(ds.MicroBeam) != 8 {
		t.Fatalf("micro campaigns: %d, want 8", len(ds.MicroBeam))
	}
	// Both injectors ran, skipping the library codes.
	for _, tool := range []faultinj.Tool{faultinj.Sassifi, faultinj.NVBitFI} {
		if _, ok := ds.AVF[tool]["FMXM"]; !ok {
			t.Fatalf("%v must cover FMXM", tool)
		}
		if _, ok := ds.AVF[tool]["FGEMM"]; ok {
			t.Fatalf("%v must not instrument library codes on Kepler", tool)
		}
	}
	// Beam matrix: all codes ECC on, the paper's subset ECC off.
	if _, ok := ds.Beam[BeamKey{"CCL", true}]; !ok {
		t.Fatal("CCL ECC-on beam missing")
	}
	if _, ok := ds.Beam[BeamKey{"CCL", false}]; ok {
		t.Fatal("CCL was not in the paper's ECC-off group")
	}
	if _, ok := ds.Beam[BeamKey{"FMXM", false}]; !ok {
		t.Fatal("FMXM ECC-off beam missing")
	}
	// Predictions exist for directly injectable codes.
	if _, ok := ds.Predictions[PredKey{"FMXM", true, faultinj.Sassifi}]; !ok {
		t.Fatal("FMXM SASSIFI prediction missing")
	}
	// Without Volta proxies, library codes have no prediction.
	if _, ok := ds.Predictions[PredKey{"FGEMM", true, faultinj.NVBitFI}]; ok {
		t.Fatal("FGEMM should need the Volta proxy")
	}
	// Units table sane.
	if ds.Units.SDC["IADD"] <= 0 {
		t.Fatal("IADD micro FIT missing")
	}
	if ds.Units.RFPerByteSDC <= 0 {
		t.Fatal("RF per-byte FIT missing")
	}
	// Static hidden-resource model: every profiled code has an estimate
	// with a proper conditional DUE probability.
	for name := range ds.Profiles {
		h, ok := ds.StaticHidden[name]
		if !ok {
			t.Fatalf("no static hidden estimate for %s", name)
		}
		if h.DUE <= 0 || h.DUE >= 1 {
			t.Fatalf("%s: static hidden DUE %.3f outside (0,1)", name, h.DUE)
		}
	}
	// The static DUE correction must close the underestimation gap: a
	// strictly positive additive term on every prediction, so the
	// corrected factor is strictly smaller wherever the beam saw DUEs.
	if ds.Units.HiddenDUEBase() <= 0 {
		t.Fatal("micro beam data yields no hidden DUE floor")
	}
	applied := 0
	for key, pred := range ds.Predictions {
		if pred.DUECorrection <= 0 || pred.DUEFITCorrected <= pred.DUEFIT {
			t.Fatalf("%+v: correction %.4f did not increase DUE FIT (%.4f -> %.4f)",
				key, pred.DUECorrection, pred.DUEFIT, pred.DUEFITCorrected)
		}
		applied++
	}
	if applied == 0 {
		t.Fatal("no predictions carried the static DUE correction")
	}
	for _, ecc := range []bool{false, true} {
		u, uok := ds.DUEUnderestimate[ecc]
		c, cok := ds.DUECorrectedUnderestimate[ecc]
		if uok != cok {
			t.Fatalf("ecc=%v: corrected factor present=%v, uncorrected present=%v", ecc, cok, uok)
		}
		if uok && c >= u {
			t.Fatalf("ecc=%v: corrected underestimation %.1fx not below uncorrected %.1fx", ecc, c, u)
		}
	}
}

func TestInjectableMatrix(t *testing.T) {
	k := device.K40c()
	v := device.V100()
	kepler := suite.Kepler()
	volta := suite.Volta()
	find := func(list []suite.Entry, name string) suite.Entry {
		e, err := suite.Find(list, name)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if injectable(k, faultinj.Sassifi, find(kepler, "FGEMM")) {
		t.Fatal("SASSIFI cannot instrument CUBLAS on Kepler")
	}
	if injectable(v, faultinj.NVBitFI, find(volta, "HGEMM")) {
		t.Fatal("NVBitFI cannot instrument half-precision kernels")
	}
	if !injectable(v, faultinj.NVBitFI, find(volta, "FGEMM")) {
		t.Fatal("NVBitFI instruments libraries on Volta")
	}
	if !injectable(k, faultinj.Sassifi, find(kepler, "FMXM")) {
		t.Fatal("plain codes are injectable")
	}
}

func TestHashAndSeeds(t *testing.T) {
	if hash("FMXM") == hash("FGEMM") {
		t.Fatal("name hash collision")
	}
	if boolBit(true) == boolBit(false) {
		t.Fatal("ECC seed bit must differ")
	}
}

func TestBeamConfigsVolta(t *testing.T) {
	entries := suite.Volta()
	keys := BeamConfigs(device.V100(), entries)
	if len(keys) != len(entries) {
		t.Fatalf("Volta beams once per variant: %d vs %d", len(keys), len(entries))
	}
	for _, k := range keys {
		e, _ := suite.Find(entries, k.Code)
		if e.Library && !k.ECC {
			t.Fatalf("%s: Volta library codes beamed with ECC on", k.Code)
		}
		if !e.Library && k.ECC {
			t.Fatalf("%s: Volta plain codes beamed with ECC off", k.Code)
		}
	}
}

func TestResolveAVFProxies(t *testing.T) {
	ds := &DeviceStudy{
		Dev: device.K40c(),
		AVF: map[faultinj.Tool]map[string]*faultinj.Result{
			faultinj.NVBitFI: {},
		},
	}
	voltaAVF := map[string]*faultinj.Result{
		"FYOLOV3": {Name: "FYOLOV3"},
	}
	entries := suite.Kepler()
	yolo, _ := suite.Find(entries, "FYOLOV2")
	got, ok := ds.resolveAVF(faultinj.NVBitFI, yolo, voltaAVF)
	if !ok || got.Name != "FYOLOV3" {
		t.Fatal("FYOLOV2 must proxy to the Volta FYOLOV3 campaign")
	}
	if _, ok := ds.resolveAVF(faultinj.NVBitFI, yolo, nil); ok {
		t.Fatal("no proxy without Volta results")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small study")
	}
	opts := tinyOpts()
	opts.CodeTrials = 15
	opts.MicroTrials = 20
	opts.NVBitFITotal = 20
	opts.SassifiPerClass = 5
	ds, err := RunDevice(device.V100(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Finalize(nil); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/study.json"
	if err := ds.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDeviceStudy(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dev.Name != ds.Dev.Name {
		t.Fatal("device lost")
	}
	if len(got.Profiles) != len(ds.Profiles) || len(got.Beam) != len(ds.Beam) ||
		len(got.Predictions) != len(ds.Predictions) || len(got.MicroBeam) != len(ds.MicroBeam) {
		t.Fatalf("shape lost: %d/%d profiles, %d/%d beams",
			len(got.Profiles), len(ds.Profiles), len(got.Beam), len(ds.Beam))
	}
	for key, want := range ds.Beam {
		gotRes, ok := got.Beam[key]
		if !ok || gotRes.SDCFIT.Rate != want.SDCFIT.Rate {
			t.Fatalf("beam entry %+v lost or altered", key)
		}
	}
	for key, want := range ds.Predictions {
		gotPred, ok := got.Predictions[key]
		if !ok || gotPred.SDCFIT != want.SDCFIT {
			t.Fatalf("prediction %+v lost or altered", key)
		}
		if gotPred.DUEFITCorrected != want.DUEFITCorrected {
			t.Fatalf("prediction %+v: corrected DUE FIT lost or altered", key)
		}
	}
	// This Volta study doubles as the second device of the acceptance
	// check: the corrected DUE prediction must beat the uncorrected one
	// here too, and both the hidden estimates and the corrected ratios
	// must survive the round trip.
	if len(got.StaticHidden) != len(ds.StaticHidden) || len(ds.StaticHidden) == 0 {
		t.Fatalf("static hidden estimates lost: %d/%d", len(got.StaticHidden), len(ds.StaticHidden))
	}
	for name, want := range ds.StaticHidden {
		if h, ok := got.StaticHidden[name]; !ok || h.DUE != want.DUE {
			t.Fatalf("static hidden estimate for %s lost or altered", name)
		}
	}
	for _, ecc := range []bool{false, true} {
		u, uok := ds.DUEUnderestimate[ecc]
		c, cok := ds.DUECorrectedUnderestimate[ecc]
		if uok && (!cok || c >= u) {
			t.Fatalf("volta ecc=%v: corrected underestimation %.1fx not below uncorrected %.1fx", ecc, c, u)
		}
		if cok && got.DUECorrectedUnderestimate[ecc] != c {
			t.Fatalf("volta ecc=%v: corrected ratio lost in round trip", ecc)
		}
	}
}

// TestLoadLegacyStudyNoDUEModes pins backward compatibility with
// studies saved before the DUE-mode taxonomy: a study_*.json with no
// StaticDUEModes section and no typed-DUE ledgers in its campaign
// tallies must load with an empty (never nil) mode map and zero-valued
// ledgers, so every renderer can consume old and new artifacts alike.
func TestLoadLegacyStudyNoDUEModes(t *testing.T) {
	legacy := `{
 "Device": "Tesla V100",
 "AVF": {
  "NVBitFI": {
   "FMXM": {"Name": "FMXM", "Device": "Tesla V100", "Injected": 10, "SDC": 2, "DUE": 3, "Masked": 5}
  }
 }
}`
	path := t.TempDir() + "/study_legacy.json"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDeviceStudy(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.StaticDUEModes == nil {
		t.Fatal("legacy study loaded with nil StaticDUEModes map")
	}
	if len(ds.StaticDUEModes) != 0 {
		t.Fatalf("legacy study invented %d static mode estimates", len(ds.StaticDUEModes))
	}
	res := ds.AVF[faultinj.NVBitFI]["FMXM"]
	if res == nil {
		t.Fatal("legacy AVF entry lost")
	}
	if res.DUEModes.DUEs() != 0 {
		t.Fatalf("legacy tally grew a DUE-mode ledger: %+v", res.DUEModes)
	}
	if mix := res.DUEModes.Mix(); mix != (patterns.DUEMix{}) {
		t.Fatalf("legacy tally's mode mix = %+v, want zero", mix)
	}
	// Re-saving and re-loading the upgraded study must keep the map.
	if err := ds.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadDeviceStudy(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.StaticDUEModes == nil {
		t.Fatal("upgraded study lost the StaticDUEModes map")
	}
}
