package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"gpurel/internal/analysis"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/fit"
	"gpurel/internal/profiler"
)

// Study results persist as JSON so the report renderers (and external
// plotting) can re-consume a campaign without re-running it. Struct-
// keyed maps are flattened into slices for encoding/json.

type beamEntryJSON struct {
	Code   string
	ECC    bool
	Result *beam.Result
}

type predEntryJSON struct {
	Code       string
	ECC        bool
	Tool       string
	Prediction fit.Prediction
}

type deviceStudyJSON struct {
	Device         string
	MicroBeam      map[string]*beam.Result
	Units          *fit.UnitFITs
	Profiles       map[string]*profiler.CodeProfile
	AVF            map[string]map[string]*faultinj.Result
	StaticAVF      map[string]*analysis.Estimate
	ScalarAVF      map[string]*analysis.Estimate
	StaticDUEModes map[string]*analysis.DUEModeEstimate
	OptMatrix      map[string]*faultinj.OptMatrix
	TwoLevel       map[string]*faultinj.TwoLevelResult
	Beam           []beamEntryJSON
	Predictions    []predEntryJSON
	Comparisons    []fit.Comparison
	StaticHidden   map[string]*analysis.HiddenEstimate
	MeasuredHidden map[string]*analysis.HiddenEstimate
	DUE            map[string]float64
	DUECorrected   map[string]float64
	DUEMeasured    map[string]float64
}

func toolByName(name string) (faultinj.Tool, error) {
	switch name {
	case faultinj.Sassifi.String():
		return faultinj.Sassifi, nil
	case faultinj.NVBitFI.String():
		return faultinj.NVBitFI, nil
	default:
		return 0, fmt.Errorf("core: unknown tool %q", name)
	}
}

// SaveJSON writes the study to path.
func (ds *DeviceStudy) SaveJSON(path string) error {
	out := deviceStudyJSON{
		Device:         ds.Dev.Name,
		MicroBeam:      ds.MicroBeam,
		Units:          ds.Units,
		Profiles:       ds.Profiles,
		AVF:            map[string]map[string]*faultinj.Result{},
		StaticAVF:      ds.StaticAVF,
		ScalarAVF:      ds.ScalarAVF,
		StaticDUEModes: ds.StaticDUEModes,
		OptMatrix:      ds.OptMatrix,
		TwoLevel:       ds.TwoLevel,
		StaticHidden:   ds.StaticHidden,
		MeasuredHidden: ds.MeasuredHidden,
		DUE:            map[string]float64{},
		DUECorrected:   map[string]float64{},
		DUEMeasured:    map[string]float64{},
	}
	for tool, byCode := range ds.AVF {
		out.AVF[tool.String()] = byCode
	}
	// Emit struct-keyed maps in sorted key order so the artifact is
	// byte-stable across runs (map iteration order is randomized).
	for _, key := range sortedBeamKeys(ds.Beam) {
		out.Beam = append(out.Beam, beamEntryJSON{Code: key.Code, ECC: key.ECC, Result: ds.Beam[key]})
	}
	predKeys := make([]PredKey, 0, len(ds.Predictions))
	for key := range ds.Predictions {
		predKeys = append(predKeys, key)
	}
	sort.Slice(predKeys, func(i, j int) bool {
		a, b := predKeys[i], predKeys[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.ECC != b.ECC {
			return !a.ECC
		}
		return a.Tool < b.Tool
	})
	for _, key := range predKeys {
		out.Predictions = append(out.Predictions, predEntryJSON{
			Code: key.Code, ECC: key.ECC, Tool: key.Tool.String(), Prediction: ds.Predictions[key],
		})
	}
	// JSON cannot carry infinities; zero-event comparisons (ratio ±Inf)
	// round-trip as ratio 0, which the renderers already display as
	// "n/a (0 events)".
	out.Comparisons = make([]fit.Comparison, len(ds.Comparisons))
	copy(out.Comparisons, ds.Comparisons)
	for i := range out.Comparisons {
		if math.IsInf(out.Comparisons[i].Ratio, 0) {
			out.Comparisons[i].Ratio = 0
		}
	}
	for ecc, v := range ds.DUEUnderestimate {
		out.DUE[eccKey(ecc)] = v
	}
	for ecc, v := range ds.DUECorrectedUnderestimate {
		out.DUECorrected[eccKey(ecc)] = v
	}
	for ecc, v := range ds.DUEMeasuredUnderestimate {
		out.DUEMeasured[eccKey(ecc)] = v
	}
	return WriteJSONAtomic(path, out)
}

// WriteJSONAtomic marshals v (indented, trailing newline-free like
// MarshalIndent) and renames it into place over path, so a reader — or
// a crash mid-write — never observes a torn file. Study artifacts and
// the serve daemon's campaign checkpoints both persist through it: a
// checkpoint that a campaign will later resume from must be all-or-
// nothing, or the resumed trial sequence would diverge.
func WriteJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshaling %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadJSON unmarshals the file at path into v, the counterpart of
// WriteJSONAtomic.
func ReadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("core: parsing %s: %w", path, err)
	}
	return nil
}

// LoadDeviceStudy reads a study saved by SaveJSON.
func LoadDeviceStudy(path string) (*DeviceStudy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in deviceStudyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	var dev *device.Device
	switch in.Device {
	case "Tesla K40c":
		dev = device.K40c()
	case "Tesla V100":
		dev = device.V100()
	case "Titan V":
		dev = device.TitanV()
	default:
		return nil, fmt.Errorf("core: unknown device %q in %s", in.Device, path)
	}
	ds := &DeviceStudy{
		Dev:                       dev,
		MicroBeam:                 in.MicroBeam,
		Units:                     in.Units,
		Profiles:                  in.Profiles,
		AVF:                       map[faultinj.Tool]map[string]*faultinj.Result{},
		StaticAVF:                 in.StaticAVF,
		ScalarAVF:                 in.ScalarAVF,
		StaticDUEModes:            in.StaticDUEModes,
		OptMatrix:                 in.OptMatrix,
		TwoLevel:                  in.TwoLevel,
		Beam:                      map[BeamKey]*beam.Result{},
		Predictions:               map[PredKey]fit.Prediction{},
		Comparisons:               in.Comparisons,
		StaticHidden:              in.StaticHidden,
		MeasuredHidden:            in.MeasuredHidden,
		DUEUnderestimate:          map[bool]float64{},
		DUECorrectedUnderestimate: map[bool]float64{},
		DUEMeasuredUnderestimate:  map[bool]float64{},
	}
	if ds.StaticAVF == nil {
		ds.StaticAVF = map[string]*analysis.Estimate{}
	}
	if ds.ScalarAVF == nil {
		ds.ScalarAVF = map[string]*analysis.Estimate{}
	}
	// Studies saved before the DUE-mode taxonomy carry no mode
	// distributions; load them with an empty (not nil) map so renderers
	// can range over it unconditionally.
	if ds.StaticDUEModes == nil {
		ds.StaticDUEModes = map[string]*analysis.DUEModeEstimate{}
	}
	if ds.OptMatrix == nil {
		ds.OptMatrix = map[string]*faultinj.OptMatrix{}
	}
	if ds.TwoLevel == nil {
		ds.TwoLevel = map[string]*faultinj.TwoLevelResult{}
	}
	if ds.StaticHidden == nil {
		ds.StaticHidden = map[string]*analysis.HiddenEstimate{}
	}
	if ds.MeasuredHidden == nil {
		ds.MeasuredHidden = map[string]*analysis.HiddenEstimate{}
	}
	for toolName, byCode := range in.AVF {
		tool, err := toolByName(toolName)
		if err != nil {
			return nil, err
		}
		ds.AVF[tool] = byCode
	}
	for _, e := range in.Beam {
		ds.Beam[BeamKey{Code: e.Code, ECC: e.ECC}] = e.Result
	}
	for _, p := range in.Predictions {
		tool, err := toolByName(p.Tool)
		if err != nil {
			return nil, err
		}
		ds.Predictions[PredKey{Code: p.Code, ECC: p.ECC, Tool: tool}] = p.Prediction
	}
	for k, v := range in.DUE {
		ds.DUEUnderestimate[k == "on"] = v
	}
	for k, v := range in.DUECorrected {
		ds.DUECorrectedUnderestimate[k == "on"] = v
	}
	for k, v := range in.DUEMeasured {
		ds.DUEMeasuredUnderestimate[k == "on"] = v
	}
	return ds, nil
}

func eccKey(ecc bool) string {
	if ecc {
		return "on"
	}
	return "off"
}
