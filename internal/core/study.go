// Package core orchestrates the paper's full cross-validation study: it
// runs, for each device, the micro-benchmark beam campaigns (Figure 3),
// the workload profiling (Table I, Figure 1), the SASSIFI / NVBitFI
// injection campaigns (Figure 4), the workload beam campaigns with ECC
// on and off (Figure 5), and finally the Equation 1-4 predictions and
// their beam comparison (Figure 6 and the §VII-B DUE analysis).
//
// It also encodes the paper's substitution rules: on Kepler, codes built
// on proprietary libraries take their AVF from the Volta NVBitFI
// campaign of a proxy workload; FP16 codes take the AVF of their FP32
// sibling because NVBitFI cannot instrument half-precision instructions.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/fit"
	"gpurel/internal/kernels"
	"gpurel/internal/microbench"
	"gpurel/internal/profiler"
	"gpurel/internal/stats"
	"gpurel/internal/suite"
)

// Options sizes the study. The zero value gives the standard campaign
// sizes; Scale shrinks every sample count proportionally (tests use
// small scales, the paper-scale run uses 1.0).
type Options struct {
	MicroTrials     int // beam trials per micro-benchmark (default 300)
	CodeTrials      int // beam trials per workload/ECC config (default 350)
	SassifiPerClass int // SASSIFI faults per instruction class (default 120)
	NVBitFITotal    int // NVBitFI faults per workload (default 500)
	MicroAVFFaults  int // injections per micro for its own AVF (default 80)
	OptFaults       int // injections per optimization-matrix cell (default 160)
	Workers         int
	Seed            uint64
	// Progress, when set, receives one line per completed campaign.
	Progress func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.MicroTrials <= 0 {
		o.MicroTrials = 300
	}
	if o.CodeTrials <= 0 {
		o.CodeTrials = 350
	}
	if o.SassifiPerClass <= 0 {
		o.SassifiPerClass = 120
	}
	if o.NVBitFITotal <= 0 {
		o.NVBitFITotal = 500
	}
	if o.MicroAVFFaults <= 0 {
		o.MicroAVFFaults = 80
	}
	if o.OptFaults <= 0 {
		o.OptFaults = 160
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	// Campaigns from different codes report concurrently; serialize the
	// sink so interleaved lines stay whole.
	var mu sync.Mutex
	inner := o.Progress
	o.Progress = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		inner(format, args...)
	}
}

// splitWorkers divides a worker budget between n concurrent campaigns
// (outer) and the parallelism inside each campaign (inner).
func splitWorkers(total, n int) (outer, inner int) {
	if n < 1 {
		n = 1
	}
	outer = total
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = total / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// forEach runs fn(i) for i in [0, n) with at most `parallel` concurrent
// calls and returns the first error.
func forEach(n, parallel int, fn func(i int) error) error {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > n {
		parallel = n
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	work := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return firstErr
}

// runnerCache builds each (workload, opt level) runner at most once per
// device study and shares its golden run, profiles, and launch-boundary
// snapshots across the profiling, injection, and beam phases.
type runnerCache struct {
	dev *device.Device
	mu  sync.Mutex
	m   map[runnerKey]*runnerEntry
}

type runnerKey struct {
	name string
	opt  asm.OptLevel
}

type runnerEntry struct {
	once sync.Once
	r    *kernels.Runner
	err  error
}

func newRunnerCache(dev *device.Device) *runnerCache {
	return &runnerCache{dev: dev, m: make(map[runnerKey]*runnerEntry)}
}

// get returns the shared runner for (name, opt), building it on first
// use. Concurrent callers for the same key block on one build.
func (c *runnerCache) get(name string, build kernels.Builder, opt asm.OptLevel) (*kernels.Runner, error) {
	key := runnerKey{name, opt}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &runnerEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.r, e.err = kernels.NewRunner(name, build, c.dev, opt)
	})
	return e.r, e.err
}

// BeamKey identifies one beam configuration of a workload.
type BeamKey struct {
	Code string
	ECC  bool
}

// PredKey identifies one prediction: workload, ECC state, and the
// injector whose AVFs fed it.
type PredKey struct {
	Code string
	ECC  bool
	Tool faultinj.Tool
}

// DeviceStudy is everything measured and predicted on one device.
type DeviceStudy struct {
	Dev *device.Device

	// Figure 3 and its derived per-unit table.
	MicroBeam map[string]*beam.Result
	Units     *fit.UnitFITs

	// Table I / Figure 1.
	Profiles map[string]*profiler.CodeProfile

	// Figure 4 (per tool, per code). Proxied entries are absent here;
	// proxy resolution happens at prediction time.
	AVF map[faultinj.Tool]map[string]*faultinj.Result

	// Figure 5.
	Beam map[BeamKey]*beam.Result

	// Figure 6 plus the DUE channel.
	Predictions map[PredKey]fit.Prediction
	Comparisons []fit.Comparison

	// StaticAVF / ScalarAVF are the per-code injection-free static AVF
	// estimates over the NVBitFI site population: the bit-resolved
	// estimator (launch-geometry-seeded known-bits/range analysis) and
	// the legacy scalar one. The cross-validation artifacts compare
	// both against AVF[NVBitFI].
	StaticAVF map[string]*analysis.Estimate
	ScalarAVF map[string]*analysis.Estimate

	// StaticDUEModes is the per-code static DUE-mode distribution over
	// the same NVBitFI site population: how a flip kills the kernel,
	// proven from the known-bits/range lattice. The due_modes artifacts
	// compare it against AVF[NVBitFI]'s typed-DUE ledger.
	StaticDUEModes map[string]*analysis.DUEModeEstimate

	// OptMatrix holds, per cross-validation workload, the compiler-
	// optimization reliability matrix: every asm.MatrixConfigs
	// configuration with its fixed-injector campaign, static estimate,
	// explainer metrics, and per-cell Eq. 1-4 prediction.
	OptMatrix map[string]*faultinj.OptMatrix

	// TwoLevel holds, per cross-validation workload, the two-level
	// propagation estimate (per-static-site sampling, dynamic-weight
	// propagation with the SDC pattern model) run against the same
	// NVBitFI site population as AVF[NVBitFI] — the cheap side of the
	// patterns_twolevel artifact.
	TwoLevel map[string]*faultinj.TwoLevelResult

	// StaticHidden is the per-code static hidden-resource DUE estimate
	// (internal/analysis), the correction term the injectors cannot
	// supply. MeasuredHidden is its measured-residency counterpart,
	// built from the golden run's telemetry (internal/sim timelines).
	StaticHidden   map[string]*analysis.HiddenEstimate
	MeasuredHidden map[string]*analysis.HiddenEstimate

	// DUEUnderestimate is the average beam/predicted DUE ratio per ECC
	// state (§VII-B: 120x / 629x on K40c, 60x / 46,700x on V100).
	DUEUnderestimate map[bool]float64

	// DUECorrectedUnderestimate is the same ratio after the static
	// hidden-resource correction: how much of the §VII-B gap the static
	// proxies close. DUEMeasuredUnderestimate is the ratio after the
	// measured-residency correction instead.
	DUECorrectedUnderestimate map[bool]float64
	DUEMeasuredUnderestimate  map[bool]float64
}

// Study is the full two-device reproduction.
type Study struct {
	Kepler *DeviceStudy
	Volta  *DeviceStudy
}

// eccOffSubset lists the Kepler codes the paper beamed with ECC
// disabled (Figure 5 left group).
var keplerECCOff = map[string]bool{
	"FHOTSPOT": true, "FLAVA": true, "FMXM": true, "NW": true,
	"MERGESORT": true, "QUICKSORT": true, "FGEMM": true,
	"FYOLOV2": true, "FYOLOV3": true,
}

// BeamConfigs returns the (code, ECC) matrix for a device, following
// Figures 5 and 6: Kepler tests everything with ECC on plus a nine-code
// ECC-off group; Volta tests the non-library codes with ECC off and the
// library codes with ECC on (beam-time restrictions, §VI).
func BeamConfigs(dev *device.Device, entries []suite.Entry) []BeamKey {
	var keys []BeamKey
	for _, e := range entries {
		if dev.Arch == device.Kepler {
			keys = append(keys, BeamKey{e.Name, true})
			if keplerECCOff[e.Name] {
				keys = append(keys, BeamKey{e.Name, false})
			}
		} else {
			keys = append(keys, BeamKey{e.Name, !eccOffOnVolta(e)})
		}
	}
	return keys
}

func eccOffOnVolta(e suite.Entry) bool { return !e.Library }

// RunDevice executes the complete single-device study.
func RunDevice(dev *device.Device, opts Options) (*DeviceStudy, error) {
	opts.defaults()
	ds := &DeviceStudy{
		Dev:                       dev,
		MicroBeam:                 make(map[string]*beam.Result),
		Profiles:                  make(map[string]*profiler.CodeProfile),
		AVF:                       make(map[faultinj.Tool]map[string]*faultinj.Result),
		StaticAVF:                 make(map[string]*analysis.Estimate),
		ScalarAVF:                 make(map[string]*analysis.Estimate),
		StaticDUEModes:            make(map[string]*analysis.DUEModeEstimate),
		Beam:                      make(map[BeamKey]*beam.Result),
		Predictions:               make(map[PredKey]fit.Prediction),
		OptMatrix:                 make(map[string]*faultinj.OptMatrix),
		TwoLevel:                  make(map[string]*faultinj.TwoLevelResult),
		StaticHidden:              make(map[string]*analysis.HiddenEstimate),
		MeasuredHidden:            make(map[string]*analysis.HiddenEstimate),
		DUEUnderestimate:          make(map[bool]float64),
		DUECorrectedUnderestimate: make(map[bool]float64),
		DUEMeasuredUnderestimate:  make(map[bool]float64),
	}

	cache := newRunnerCache(dev)
	var mu sync.Mutex // guards the ds maps and micro accumulators

	// 1. Micro-benchmark beam campaigns (Figure 3). ECC is enabled for
	// all micro-benchmarks except RF (§V-B). Micros run concurrently;
	// each campaign result depends only on its own seed, so the split
	// does not change any number.
	microAVF := make(map[string]float64)
	microPhi := make(map[string]float64)
	microHidden := make(map[string]float64)
	var rfExposedBytes int
	micros := microbench.Catalog(dev)
	outer, innerW := splitWorkers(opts.Workers, len(micros))
	err := forEach(len(micros), outer, func(i int) error {
		m := micros[i]
		r, err := cache.get(m.Name, m.Build, asm.O2)
		if err != nil {
			return fmt.Errorf("core: micro %s: %w", m.Name, err)
		}
		if mp, err := profiler.Profile(r); err == nil {
			mu.Lock()
			microPhi[m.Name] = mp.Phi()
			mu.Unlock()
		}
		// The micro's own measured hidden exposure calibrates the
		// measured DUE correction (fit.MeasuredHiddenDUEBase).
		mh := faultinj.MeasuredHidden(r)
		mu.Lock()
		microHidden[m.Name] = mh.DUEExposure()
		mu.Unlock()
		ecc := m.Name != "RF"
		res, err := beam.Run(beam.Config{
			ECC: ecc, Trials: opts.MicroTrials, Workers: innerW,
			Seed: opts.Seed ^ hash(m.Name),
		}, r)
		if err != nil {
			return fmt.Errorf("core: micro beam %s: %w", m.Name, err)
		}
		mu.Lock()
		ds.MicroBeam[m.Name] = res
		mu.Unlock()
		opts.Progress("micro beam %-6s on %s: SDC %.2f DUE %.2f a.u.",
			m.Name, dev.Name, res.SDCFIT.Rate, res.DUEFIT.Rate)

		if m.Name == "RF" {
			l := r.Instance().Launches[0]
			mu.Lock()
			rfExposedBytes = l.GridX * l.GridY * l.BlockThreads * l.Prog.NumRegs * 4
			microAVF[m.Name] = 1 // every stored bit is checked
			mu.Unlock()
			return nil
		}
		// Micro AVF via direct injection on the unit under test.
		tool := faultinj.NVBitFI
		if dev.Arch == device.Kepler {
			tool = faultinj.Sassifi
		}
		ir, err := cache.get(m.Name, m.Build, tool.OptLevel())
		if err != nil {
			return fmt.Errorf("core: micro %s at %s opt: %w", m.Name, tool, err)
		}
		avfRes, err := faultinj.RunWithRunner(faultinj.Config{
			Tool: tool, FaultsPerClass: opts.MicroAVFFaults,
			TotalFaults: opts.MicroAVFFaults * 3,
			Workers:     innerW, Seed: opts.Seed ^ hash(m.Name) ^ 0xa7f5a17,
		}, ir)
		if err == nil {
			mu.Lock()
			microAVF[m.Name] = avfRes.SDCAVF.P
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	units, err := fit.FromMicroResults(dev.Name, ds.MicroBeam, microAVF, microPhi, microHidden, rfExposedBytes)
	if err != nil {
		return nil, err
	}
	ds.Units = units

	// 2. Profiling (Table I, Figure 1), concurrent across codes.
	entries := suite.ForDevice(dev)
	outer, _ = splitWorkers(opts.Workers, len(entries))
	err = forEach(len(entries), outer, func(i int) error {
		e := entries[i]
		r, err := cache.get(e.Name, e.Build, asm.O2)
		if err != nil {
			return fmt.Errorf("core: profiling %s: %w", e.Name, err)
		}
		cp, err := profiler.Profile(r)
		if err != nil {
			return err
		}
		hid := faultinj.StaticHidden(r)
		mhid := faultinj.MeasuredHidden(r)
		mu.Lock()
		ds.Profiles[e.Name] = cp
		ds.StaticHidden[e.Name] = hid
		ds.MeasuredHidden[e.Name] = mhid
		mu.Unlock()
		opts.Progress("profile %-10s: IPC %.2f occ %.2f regs %d shared %dB hiddenDUE %.3f/%.3f (static/measured)",
			e.Name, cp.IPC, cp.Occupancy, cp.RegsPerThread, cp.SharedBytes, hid.DUE, mhid.DUE)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// 3. Injection campaigns (Figure 4), concurrent across (tool, code)
	// pairs; each campaign reuses the cached runner for its pipeline.
	tools := []faultinj.Tool{faultinj.NVBitFI}
	if dev.Arch == device.Kepler {
		tools = []faultinj.Tool{faultinj.Sassifi, faultinj.NVBitFI}
	}
	type injJob struct {
		tool faultinj.Tool
		e    suite.Entry
	}
	var injJobs []injJob
	for _, tool := range tools {
		ds.AVF[tool] = make(map[string]*faultinj.Result)
		for _, e := range entries {
			if injectable(dev, tool, e) {
				injJobs = append(injJobs, injJob{tool, e})
			}
		}
	}
	outer, innerW = splitWorkers(opts.Workers, len(injJobs))
	err = forEach(len(injJobs), outer, func(i int) error {
		j := injJobs[i]
		r, err := cache.get(j.e.Name, j.e.Build, j.tool.OptLevel())
		if err != nil {
			return fmt.Errorf("core: %s on %s: %w", j.tool, j.e.Name, err)
		}
		res, err := faultinj.RunWithRunner(faultinj.Config{
			Tool: j.tool, FaultsPerClass: opts.SassifiPerClass,
			TotalFaults: opts.NVBitFITotal, Workers: innerW,
			Seed: opts.Seed ^ hash(j.e.Name) ^ uint64(j.tool),
		}, r)
		if err != nil {
			return fmt.Errorf("core: %s on %s: %w", j.tool, j.e.Name, err)
		}
		// The static counterparts of the NVBitFI campaign: deterministic,
		// injection-free, and the other side of the cross-validation
		// artifacts. Computed here because the runner is already built.
		var st, sc *analysis.Estimate
		var dm *analysis.DUEModeEstimate
		if j.tool == faultinj.NVBitFI {
			if st, err = faultinj.StaticEstimate(r, j.tool); err != nil {
				return fmt.Errorf("core: static estimate %s: %w", j.e.Name, err)
			}
			if sc, err = faultinj.StaticEstimateScalar(r, j.tool); err != nil {
				return fmt.Errorf("core: scalar estimate %s: %w", j.e.Name, err)
			}
			if dm, err = faultinj.StaticDUEModes(r, j.tool); err != nil {
				return fmt.Errorf("core: static DUE modes %s: %w", j.e.Name, err)
			}
		}
		mu.Lock()
		ds.AVF[j.tool][j.e.Name] = res
		if st != nil {
			ds.StaticAVF[j.e.Name] = st
			ds.ScalarAVF[j.e.Name] = sc
			ds.StaticDUEModes[j.e.Name] = dm
		}
		mu.Unlock()
		opts.Progress("%s %-10s: AVF SDC %.3f DUE %.3f (n=%d)",
			j.tool, j.e.Name, res.SDCAVF.P, res.DUEAVF.P, res.Injected)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// 3b. Compiler-optimization reliability matrix over the cross-
	// validation workloads: every asm.MatrixConfigs configuration gets a
	// fixed-injector NVBitFI campaign, the static estimate and explainer
	// (the "why" columns of the opt_* artifacts), and an Eq. 1-4
	// prediction from its own per-configuration code profile at ECC on
	// (the memory term drops, leaving the logic AVF the matrix varies).
	var matrixJobs []suite.Entry
	for _, e := range entries {
		if matrixKernel(e.Name) {
			matrixJobs = append(matrixJobs, e)
		}
	}
	runnerFor := func(name string, build kernels.Builder, _ *device.Device, opt asm.OptLevel) (*kernels.Runner, error) {
		return cache.get(name, build, opt)
	}
	outer, innerW = splitWorkers(opts.Workers, len(matrixJobs))
	err = forEach(len(matrixJobs), outer, func(i int) error {
		e := matrixJobs[i]
		m, err := faultinj.RunOptMatrix(faultinj.OptMatrixConfig{
			Faults: opts.OptFaults, Workers: innerW,
			Seed: opts.Seed ^ hash(e.Name) ^ 0x097a11e1,
		}, e.Name, e.Build, dev, runnerFor)
		if err != nil {
			return fmt.Errorf("core: opt matrix %s: %w", e.Name, err)
		}
		for _, cell := range m.Cells {
			r, err := cache.get(e.Name, e.Build, cell.Opt)
			if err != nil {
				return err
			}
			cp, err := profiler.Profile(r)
			if err != nil {
				return fmt.Errorf("core: opt profile %s at %s: %w", e.Name, cell.Opt, err)
			}
			fit.PredictOptCell(cp, cell, ds.Units, true)
		}
		mu.Lock()
		ds.OptMatrix[e.Name] = m
		mu.Unlock()
		opts.Progress("opt matrix %-10s: %d configs, ordering tau %.2f",
			e.Name, len(m.Cells), m.OrderingTau(faultinj.OptOrderingEps))
		return nil
	})
	if err != nil {
		return nil, err
	}

	// 3c. Two-level estimates over the cross-validation workloads: the
	// stratified per-site estimator the patterns_twolevel artifact
	// compares against the exhaustive NVBitFI campaigns of phase 3. The
	// runner (and its golden profiles) is shared with that phase via the
	// cache, so this costs only the level-1 site samples.
	var tlJobs []suite.Entry
	for _, e := range matrixJobs {
		if injectable(dev, faultinj.NVBitFI, e) {
			tlJobs = append(tlJobs, e)
		}
	}
	outer, innerW = splitWorkers(opts.Workers, len(tlJobs))
	err = forEach(len(tlJobs), outer, func(i int) error {
		e := tlJobs[i]
		r, err := cache.get(e.Name, e.Build, faultinj.NVBitFI.OptLevel())
		if err != nil {
			return fmt.Errorf("core: two-level %s: %w", e.Name, err)
		}
		res, err := faultinj.TwoLevelEstimateWithRunner(faultinj.TwoLevelConfig{
			Tool: faultinj.NVBitFI, Workers: innerW,
			Seed: opts.Seed ^ hash(e.Name) ^ 0x2c0de1,
		}, r)
		if err != nil {
			return fmt.Errorf("core: two-level %s: %w", e.Name, err)
		}
		mu.Lock()
		ds.TwoLevel[e.Name] = res
		mu.Unlock()
		opts.Progress("two-level %-10s: SDC %.3f DUE %.3f (%d sites, %d trials)",
			e.Name, res.SDCAVF, res.DUEAVF, res.Sites, res.Trials)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// 4. Beam campaigns over the codes (Figure 5), concurrent across
	// (code, ECC) configurations.
	keys := BeamConfigs(dev, entries)
	outer, innerW = splitWorkers(opts.Workers, len(keys))
	err = forEach(len(keys), outer, func(i int) error {
		key := keys[i]
		e, err := suite.Find(entries, key.Code)
		if err != nil {
			return err
		}
		r, err := cache.get(e.Name, e.Build, asm.O2)
		if err != nil {
			return err
		}
		res, err := beam.Run(beam.Config{
			ECC: key.ECC, Trials: opts.CodeTrials, Workers: innerW,
			Seed: opts.Seed ^ hash(e.Name) ^ boolBit(key.ECC),
		}, r)
		if err != nil {
			return fmt.Errorf("core: beam %s ecc=%v: %w", e.Name, key.ECC, err)
		}
		mu.Lock()
		ds.Beam[key] = res
		mu.Unlock()
		opts.Progress("beam %-10s ecc=%-5v: SDC %.3f DUE %.3f a.u.",
			e.Name, key.ECC, res.SDCFIT.Rate, res.DUEFIT.Rate)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// matrixKernel reports whether a workload is in the optimization-matrix
// population (the injection cross-validation set: the matrix gate
// compares static and dynamic orderings, which needs kernels where the
// two views agree on levels first).
func matrixKernel(name string) bool {
	for _, k := range faultinj.CrossValKernels {
		if k == name {
			return true
		}
	}
	return false
}

// injectable reports whether the tool can instrument the entry on the
// device (§III-D, §VI).
func injectable(dev *device.Device, tool faultinj.Tool, e suite.Entry) bool {
	if dev.Arch == device.Kepler && e.Library {
		return false // no injector supports proprietary libraries on Kepler
	}
	if tool == faultinj.NVBitFI && e.FP16 {
		return false // NVBitFI cannot inject into half-precision kernels
	}
	if tool == faultinj.Sassifi && e.FP16 {
		return false // Kepler has no FP16 anyway
	}
	return true
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1 << 40
	}
	return 0
}

// sortedBeamKeys returns the map's keys ordered by (code, ECC off
// first), for deterministic iteration.
func sortedBeamKeys(m map[BeamKey]*beam.Result) []BeamKey {
	keys := make([]BeamKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Code != keys[j].Code {
			return keys[i].Code < keys[j].Code
		}
		return !keys[i].ECC
	})
	return keys
}

// Finalize computes the predictions and comparisons of §VII once the
// AVF proxies are resolvable. voltaAVF supplies the Volta NVBitFI
// results needed by Kepler's library codes (nil when finalizing Volta
// itself).
func (ds *DeviceStudy) Finalize(voltaAVF map[string]*faultinj.Result) error {
	entries := suite.ForDevice(ds.Dev)
	var tools []faultinj.Tool
	if ds.Dev.Arch == device.Kepler {
		tools = []faultinj.Tool{faultinj.Sassifi, faultinj.NVBitFI}
	} else {
		tools = []faultinj.Tool{faultinj.NVBitFI}
	}
	// Iterate beam configurations in sorted order: Comparisons is an
	// ordered artifact, and the DUE ratio accumulation below must not
	// pick up ULP noise from map iteration order.
	beamKeys := sortedBeamKeys(ds.Beam)
	for _, key := range beamKeys {
		beamRes := ds.Beam[key]
		e, err := suite.Find(entries, key.Code)
		if err != nil {
			return err
		}
		cp := ds.Profiles[key.Code]
		for _, tool := range tools {
			avf, ok := ds.resolveAVF(tool, e, voltaAVF)
			if !ok {
				continue
			}
			pred := fit.Predict(cp, avf, ds.Units, key.ECC)
			// Fold in the hidden-resource DUE term (§VII-B) — the part
			// of the DUE rate the injector-fed AVFs cannot see — in both
			// views: static (structural proxies) and measured (golden-run
			// residency telemetry).
			pred = pred.ApplyStaticDUE(ds.Units, ds.StaticHidden[key.Code])
			pred = pred.ApplyMeasuredDUE(ds.Units, ds.MeasuredHidden[key.Code])
			pk := PredKey{Code: key.Code, ECC: key.ECC, Tool: tool}
			ds.Predictions[pk] = pred
			ds.Comparisons = append(ds.Comparisons,
				fit.Compare(key.Code, key.ECC, tool, beamRes.SDCFIT.Rate, pred.SDCFIT))
		}
	}
	// DUE underestimation, averaged geometrically per ECC state over the
	// NVBitFI-based predictions — uncorrected (the paper's headline
	// number) and after the static hidden-resource correction.
	for _, ecc := range []bool{false, true} {
		var ratios, corrected, measured []float64
		for _, key := range beamKeys {
			beamRes := ds.Beam[key]
			if key.ECC != ecc {
				continue
			}
			pred, ok := ds.Predictions[PredKey{Code: key.Code, ECC: ecc, Tool: faultinj.NVBitFI}]
			if !ok {
				continue
			}
			if pred.DUEFIT <= 0 || beamRes.DUEFIT.Rate <= 0 {
				continue
			}
			ratios = append(ratios, beamRes.DUEFIT.Rate/pred.DUEFIT)
			if pred.DUEFITCorrected > 0 {
				corrected = append(corrected, beamRes.DUEFIT.Rate/pred.DUEFITCorrected)
			}
			if pred.DUEFITCorrectedMeasured > 0 {
				measured = append(measured, beamRes.DUEFIT.Rate/pred.DUEFITCorrectedMeasured)
			}
		}
		if len(ratios) > 0 {
			ds.DUEUnderestimate[ecc] = stats.GeomMeanAbsSigned(ratios)
		}
		if len(corrected) > 0 {
			ds.DUECorrectedUnderestimate[ecc] = stats.GeomMeanAbsSigned(corrected)
		}
		if len(measured) > 0 {
			ds.DUEMeasuredUnderestimate[ecc] = stats.GeomMeanAbsSigned(measured)
		}
	}
	return nil
}

// resolveAVF returns the AVF campaign for an entry under a tool,
// applying the paper's proxy substitutions.
func (ds *DeviceStudy) resolveAVF(tool faultinj.Tool, e suite.Entry, voltaAVF map[string]*faultinj.Result) (*faultinj.Result, bool) {
	if r, ok := ds.AVF[tool][e.Name]; ok {
		return r, true
	}
	// FP16 entries: same-device FP32 sibling (§VI).
	if e.FP16 && e.AVFProxy != "" {
		if r, ok := ds.AVF[tool][e.AVFProxy]; ok {
			return r, true
		}
	}
	// Kepler library entries: Volta NVBitFI proxy (§III-D). The paper
	// notes this applies to both injectors' predictions.
	if ds.Dev.Arch == device.Kepler && e.Library && voltaAVF != nil {
		proxy := e.AVFProxy
		if proxy == "" {
			proxy = e.Name
		}
		if r, ok := voltaAVF[proxy]; ok {
			return r, true
		}
	}
	return nil, false
}

// Run executes the full two-device study and resolves cross-device
// proxies: Volta first (its NVBitFI AVFs feed Kepler's library codes),
// then Kepler.
func Run(opts Options) (*Study, error) {
	volta, err := RunDevice(device.V100(), opts)
	if err != nil {
		return nil, err
	}
	if err := volta.Finalize(nil); err != nil {
		return nil, err
	}
	kepler, err := RunDevice(device.K40c(), opts)
	if err != nil {
		return nil, err
	}
	if err := kepler.Finalize(volta.AVF[faultinj.NVBitFI]); err != nil {
		return nil, err
	}
	return &Study{Kepler: kepler, Volta: volta}, nil
}
