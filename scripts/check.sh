#!/bin/sh
# Repository check tiers.
#
#   scripts/check.sh         tier 1: build + tests (the gate every change must pass)
#   scripts/check.sh full    tier 2: tier 1 + go vet + lint gate + race detector
#   scripts/check.sh bench   substrate benchmarks (one iteration each; smoke, not timing)
#
# The race run executes the whole test suite a second time under
# -race instrumentation; expect it to take several times longer than
# the plain run. It uses -short so the heaviest campaign tests (already
# exercised un-instrumented by tier 1) do not push packages past the
# per-package timeout under the ~10x race slowdown.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "bench" ]; then
    echo "== go test -run=^\$ -bench=BenchmarkSim -benchtime=1x"
    go test -run='^$' -bench=BenchmarkSim -benchtime=1x .
    echo "checks passed"
    exit 0
fi

echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test ./...

if [ "${1:-}" = "full" ]; then
    echo "== go vet ./..."
    go vet ./...
    echo "== gpurel-lint (selftest + built-in kernels and micros)"
    go run ./cmd/gpurel-lint -selftest
    go run ./cmd/gpurel-lint >/dev/null
    echo "== go test -race -short ./..."
    go test -race -short -timeout 20m ./...
fi

echo "checks passed"
