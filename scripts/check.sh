#!/bin/sh
# Repository check tiers.
#
#   scripts/check.sh            tier 1: build + tests (the gate every change must pass)
#   scripts/check.sh full       tier 2: tier 1 + gofmt + go vet + lint gate + race detector
#   scripts/check.sh bench      substrate benchmarks (one iteration each; smoke, not timing)
#   scripts/check.sh artifacts  golden-artifact drift gate: regenerate out/ and byte-diff
#   scripts/check.sh crossval   static-vs-injection agreement gate + table export
#   scripts/check.sh opt        optimization-matrix ordering gate + sweep table export
#   scripts/check.sh serve      campaign-daemon gate: serve tests under -race, then a
#                               loadgen soak (200+ concurrent campaigns) against a live
#                               gpurel-serve; soak report lands at serve-soak.txt
#   scripts/check.sh patterns   SDC-pattern gate: classifier + two-level tests under
#                               -race, then the two-level agreement gate; rendered
#                               table lands at patterns-gate-table.txt
#   scripts/check.sh duemode    DUE-mode gate: taxonomy packages under -race, the
#                               static-vs-injection DUE-mode tests, then the
#                               gpurel-lint agreement gate; rendered table lands
#                               at duemode-gate-table.txt
#
# Unknown tier names fail immediately (exit 1) rather than silently
# running tier 1 — a typo'd "scripts/check.sh crosval" in CI must not
# masquerade as a passing crossval gate. Setting CHECK_SH_PARSE_ONLY=1
# validates the tier argument and exits before doing any work (used by
# the dispatcher's own tests).
#
# The race run executes the whole test suite a second time under
# -race instrumentation; expect it to take several times longer than
# the plain run. It uses -short so the heaviest campaign tests (already
# exercised un-instrumented by tier 1) do not push packages past the
# per-package timeout under the ~10x race slowdown.
#
# The artifacts tier reruns the full two-device study with the canonical
# flags (see EXPERIMENTS.md) into a temp directory and byte-compares it
# against the committed out/. The study is deterministic, so any diff is
# either an intentional model change (regenerate and commit out/) or
# silent drift — both are worth failing CI over.
set -eu
cd "$(dirname "$0")/.."

tier="${1:-}"
case "$tier" in
    ""|full|bench|crossval|opt|artifacts|serve|patterns|duemode) ;;
    *)
        echo "check.sh: unknown tier \"$tier\"" >&2
        echo "known tiers: <none> (tier 1), full, bench, crossval, opt, artifacts, serve, patterns, duemode" >&2
        exit 1
        ;;
esac

if [ "${CHECK_SH_PARSE_ONLY:-}" = "1" ]; then
    echo "tier ok: ${tier:-default}"
    exit 0
fi

if [ "${1:-}" = "bench" ]; then
    # Two stages. First a one-iteration smoke pass over every substrate
    # benchmark (compiles-and-runs coverage, no timing claims). Then the
    # timed per-fault gate: re-time the BenchmarkSimPerFault* suite,
    # emit the snapshot JSON benchdiff consumes (bench-new.json; stable
    # path, gitignored, uploaded by CI), and compare it against the
    # committed BENCH_v0.json baseline. The band is wide (see
    # tools/benchdiff) because CI runners are not the snapshot machine;
    # it exists to catch algorithmic regressions of the replay path,
    # not single-digit-percent noise.
    echo "== go test -run=^\$ -bench=BenchmarkSim -benchtime=1x ./..."
    go test -run='^$' -bench=BenchmarkSim -benchtime=1x ./...
    echo "== go test -run=^\$ -bench=BenchmarkSimPerFault -benchtime=2s -count=3 ."
    go test -run='^$' -bench=BenchmarkSimPerFault -benchtime=2s -count=3 . >bench-run.txt
    cat bench-run.txt
    go run ./tools/benchdiff emit -note "scripts/check.sh bench" <bench-run.txt >bench-new.json
    echo "== benchdiff compare BENCH_v0.json bench-new.json"
    go run ./tools/benchdiff compare -band 2.0 BENCH_v0.json bench-new.json
    echo "checks passed"
    exit 0
fi

if [ "${1:-}" = "crossval" ]; then
    # Rerun the static-vs-injection cross-validation (scalar + bit-band
    # tables, beam campaigns skipped) on both devices and fail if any
    # CrossValKernels workload sits outside faultinj.CrossValTolerance —
    # i.e. if a model change regressed a previously-agreeing kernel. The
    # rendered tables land at crossval-table.txt (stable path;
    # gitignored) so CI can upload them as a build artifact either way.
    echo "== gpurel-lint -cross-validate -beam-trials 0 -crossval-gate"
    if ! go run ./cmd/gpurel-lint -cross-validate -beam-trials 0 -crossval-gate >crossval-table.txt; then
        cat crossval-table.txt
        echo "CROSSVAL GATE: a workload's static AVF left the injection tolerance band (see above)"
        exit 1
    fi
    cat crossval-table.txt
    echo "checks passed"
    exit 0
fi

if [ "${1:-}" = "opt" ]; then
    # Rerun the optimization matrix (O0/O1/O2 plus unroll, copy-prop,
    # and spill knobs) over the CrossValKernels of both devices and fail
    # if the static per-configuration AVF ordering contradicts the
    # injection campaign's on any matrix — i.e. if a codegen or
    # explainer change broke the "why" layer's predictive ordering. The
    # sweep table lands at opt-gate-table.txt (stable path; gitignored)
    # so CI can upload it either way.
    echo "== gpurel-lint -opt-gate"
    if ! go run ./cmd/gpurel-lint -opt-gate >opt-gate-table.txt; then
        cat opt-gate-table.txt
        echo "OPT GATE: static AVF ordering contradicts injection on a matrix (see above)"
        exit 1
    fi
    cat opt-gate-table.txt
    echo "checks passed"
    exit 0
fi

if [ "${1:-}" = "artifacts" ]; then
    # Keep these flags in sync with EXPERIMENTS.md ("canonical artifact
    # regeneration"); a different trial count or seed produces different
    # (equally valid) numbers and a guaranteed diff. The byte-diff covers
    # every committed artifact, including the residency_* telemetry
    # tables and the due_gap_*/due_* static-vs-measured columns.
    #
    # On drift, the sanitized diff summary is left at out-drift-summary.txt
    # (stable path; gitignored) so CI can upload it as a workflow artifact.
    regen_cmd="go run ./cmd/gpurel-repro -trials 450 -faults 640 -seed 1"
    tmp="$(mktemp -d)"
    drift="$(mktemp)"
    trap 'rm -rf "$tmp" "$drift"' EXIT
    echo "== $regen_cmd -out <tempdir> -quiet"
    $regen_cmd -out "$tmp" -quiet
    echo "== diff -r out <tempdir>"
    if ! diff -r out "$tmp" >"$drift" 2>&1; then
        sed "s|$tmp|<regenerated>|g" "$drift" >out-drift-summary.txt
        echo "ARTIFACT DRIFT: regenerated artifacts differ from the committed out/:"
        grep -E '^(diff|Only in|Binary files)' out-drift-summary.txt || true
        echo "-- first differing hunks --"
        head -40 out-drift-summary.txt
        echo ""
        echo "Full diff summary written to out-drift-summary.txt"
        echo "If the change is intentional, regenerate and commit:"
        echo "    $regen_cmd -out out"
        exit 1
    fi
    rm -f out-drift-summary.txt
    echo "checks passed"
    exit 0
fi

if [ "$tier" = "patterns" ]; then
    # SDC-pattern gate, two stages. First the taxonomy-carrying packages
    # under -race: the classifier itself, the kernels diff capture, and
    # the two-level estimator's worker pool (-short keeps the exhaustive
    # campaign tests in the un-instrumented stage below). Then the full
    # two-level cross-validation test plus the gpurel-lint gate: on every
    # CrossValKernels workload of both devices, the two-level SDC AVF
    # must sit within faultinj.TwoLevelTolerance of an exhaustive
    # NVBitFI campaign at five or more times fewer simulations. The
    # rendered table lands at patterns-gate-table.txt (stable path;
    # gitignored) so CI can upload it either way.
    echo "== go test -race -short ./internal/patterns/ ./internal/kernels/ ./internal/faultinj/"
    go test -race -short -timeout 20m ./internal/patterns/ ./internal/kernels/ ./internal/faultinj/
    echo "== go test -run 'TestTwoLevel' ./internal/faultinj/"
    go test -run 'TestTwoLevel' -timeout 20m ./internal/faultinj/
    echo "== gpurel-lint -twolevel-gate -faults 500"
    if ! go run ./cmd/gpurel-lint -twolevel-gate -faults 500 >patterns-gate-table.txt; then
        cat patterns-gate-table.txt
        echo "PATTERNS GATE: the two-level estimate left the tolerance band or lost its speedup (see above)"
        exit 1
    fi
    cat patterns-gate-table.txt
    echo "checks passed"
    exit 0
fi

if [ "$tier" = "duemode" ]; then
    # DUE-mode gate, two stages. First the taxonomy-carrying packages
    # under -race: the typed simulator outcomes, the static mode
    # partition, and the DUE ledger (-short keeps the exhaustive
    # campaign tests out of the instrumented run). Then the full
    # static-vs-injection DUE-mode tests plus the gpurel-lint gate: on
    # every measurable CrossValKernels workload of both devices the
    # static mode shares must sit within faultinj.DUEModeTolerance
    # (L-infinity) of the campaign's typed-DUE ledger. The rendered
    # table lands at duemode-gate-table.txt (stable path; gitignored)
    # so CI can upload it either way.
    echo "== go test -race -short ./internal/analysis/ ./internal/sim/ ./internal/patterns/"
    go test -race -short -timeout 20m ./internal/analysis/ ./internal/sim/ ./internal/patterns/
    echo "== go test -run 'TestDUEMode|TestStaticDUEModes' ./internal/faultinj/"
    go test -run 'TestDUEMode|TestStaticDUEModes' -timeout 20m ./internal/faultinj/
    echo "== gpurel-lint -duemode-gate"
    if ! go run ./cmd/gpurel-lint -duemode-gate >duemode-gate-table.txt; then
        cat duemode-gate-table.txt
        echo "DUEMODE GATE: a workload's static DUE-mode shares left the typed-injection tolerance (see above)"
        exit 1
    fi
    cat duemode-gate-table.txt
    echo "checks passed"
    exit 0
fi

if [ "$tier" = "serve" ]; then
    # Campaign-daemon gate, two stages. First the serve/stats/faultinj
    # packages rerun under -race: the daemon is the one place the repo
    # shards one campaign's trials across goroutines, so its tests are
    # where the race detector earns its keep. Then a live soak: build
    # gpurel-serve and tools/loadgen, boot the daemon on a loopback
    # port, and push a few hundred concurrent campaigns through it.
    # The loadgen asserts determinism (duplicate requests land on
    # byte-identical /counts bodies), verifies adaptive stopping beat
    # the fixed-count baseline on every CrossValKernel, and writes the
    # savings table + latency percentiles + a /metrics scrape to
    # serve-soak.txt (stable path; gitignored) for CI to upload.
    echo "== go test -race ./internal/serve/ ./internal/stats/ ./internal/faultinj/"
    go test -race -timeout 20m ./internal/serve/ ./internal/stats/ ./internal/faultinj/
    bindir="$(mktemp -d)"
    spool="$(mktemp -d)"
    daemon_pid=""
    cleanup() {
        [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
        rm -rf "$bindir" "$spool"
    }
    trap cleanup EXIT
    echo "== go build ./cmd/gpurel-serve ./tools/loadgen"
    go build -o "$bindir/gpurel-serve" ./cmd/gpurel-serve
    go build -o "$bindir/loadgen" ./tools/loadgen
    addr="127.0.0.1:${GPUREL_SERVE_PORT:-8397}"
    echo "== gpurel-serve -addr $addr (background)"
    "$bindir/gpurel-serve" -addr "$addr" -spool "$spool" -quiet &
    daemon_pid=$!
    echo "== loadgen -addr $addr -campaigns 200"
    "$bindir/loadgen" -addr "$addr" -campaigns 200 -out serve-soak.txt
    cat serve-soak.txt
    echo "checks passed"
    exit 0
fi

echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test ./...

if [ "${1:-}" = "full" ]; then
    echo "== gofmt -l"
    unformatted="$(gofmt -l .)"
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:"
        echo "$unformatted"
        exit 1
    fi
    echo "== go vet ./..."
    go vet ./...
    echo "== gpurel-lint (selftest + built-in kernels and micros)"
    go run ./cmd/gpurel-lint -selftest
    go run ./cmd/gpurel-lint >/dev/null
    echo "== gomaplint (deterministic artifact writers)"
    go run ./tools/gomaplint .
    echo "== go test -race -short ./..."
    go test -race -short -timeout 20m ./...
fi

echo "checks passed"
