// ECC trade-off study: §VI of the paper observes that enabling SECDED
// ECC cuts the SDC FIT rate by up to 21x but *raises* the DUE rate (up
// to 5x) because detected-uncorrectable multi-bit upsets turn into
// crashes. This example measures both channels on a memory-light code
// (MxM) and a memory-heavy one (NW) with ECC on and off.
package main

import (
	"fmt"
	"log"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func main() {
	dev := device.K40c()
	const trials = 250

	codes := []struct {
		name  string
		build kernels.Builder
	}{
		{"FMXM", kernels.MxMBuilder(isa.F32)},
		{"NW", kernels.NWBuilder()},
	}
	for _, c := range codes {
		r, err := kernels.NewRunner(c.name, c.build, dev, asm.O2)
		if err != nil {
			log.Fatal(err)
		}
		var sdc, due [2]float64
		for i, ecc := range []bool{false, true} {
			res, err := beam.Run(beam.Config{ECC: ecc, Trials: trials, Seed: 11}, r)
			if err != nil {
				log.Fatal(err)
			}
			sdc[i], due[i] = res.SDCFIT.Rate, res.DUEFIT.Rate
		}
		fmt.Printf("%s on %s:\n", c.name, dev.Name)
		fmt.Printf("  SDC FIT: ECC off %.3f -> ECC on %.3f  (%.1fx reduction)\n",
			sdc[0], sdc[1], ratio(sdc[0], sdc[1]))
		fmt.Printf("  DUE FIT: ECC off %.3f -> ECC on %.3f  (%.1fx change)\n",
			due[0], due[1], ratio(due[1], due[0]))
		fmt.Println()
	}
	fmt.Println("ECC converts silent corruptions into corrections (single-bit)")
	fmt.Println("and detected crashes (multi-bit): SDC falls, DUE can rise.")
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
