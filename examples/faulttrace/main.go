// Fault-propagation tracing: run the same kernel twice — once clean,
// once with an NVBitFI-style single-bit flip — capture both instruction
// traces, and show where the corruption enters and how far it spreads.
// This is the visibility that fault simulation has and beam experiments
// lack (§II: "beam experiments ... lack visibility as it is hard to
// associate observed behaviors with the source of the fault").
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
	"gpurel/internal/sim"
)

// buildDot builds a small dot-product kernel: each of 32 threads
// multiplies two vector elements and a tree of adds in thread 0 is
// replaced by a plain store per thread (kept simple for the trace).
func buildDot(aBase, bBase, outBase uint32) *isa.Program {
	b := asm.New("dot", asm.O2)
	gid := b.R()
	b.S2R(gid, isa.SrTidX)
	aAddr := b.R()
	b.IMad(aAddr, isa.R(gid), isa.ImmInt(4), isa.ImmInt(int32(aBase)))
	bAddr := b.R()
	b.IMad(bAddr, isa.R(gid), isa.ImmInt(4), isa.ImmInt(int32(bBase)))
	av, bv := b.R(), b.R()
	b.Ldg(av, aAddr, 0)
	b.Ldg(bv, bAddr, 0)
	acc := b.R()
	b.FMul(acc, isa.R(av), isa.R(bv))
	// A short dependent chain so the flip has somewhere to travel.
	for i := 0; i < 3; i++ {
		b.FFma(acc, isa.R(acc), isa.R(av), isa.R(bv))
	}
	oAddr := b.R()
	b.IMad(oAddr, isa.R(gid), isa.ImmInt(4), isa.ImmInt(int32(outBase)))
	b.Stg(oAddr, 0, acc)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func run(fault *sim.FaultPlan) (trace string, out []uint32) {
	g := mem.NewGlobal(1 << 16)
	aBase, _ := g.Alloc(32 * 4)
	bBase, _ := g.Alloc(32 * 4)
	outBase, _ := g.Alloc(32 * 4)
	for i := 0; i < 32; i++ {
		g.SetWord(aBase+uint32(i*4), math.Float32bits(float32(i)*0.25))
		g.SetWord(bBase+uint32(i*4), math.Float32bits(1.5))
	}
	var buf strings.Builder
	res, err := sim.Run(sim.Config{
		Device: device.V100(), Program: buildDot(aBase, bBase, outBase),
		GridX: 1, GridY: 1, BlockThreads: 32,
		Fault: fault, Trace: &buf,
	}, g)
	if err != nil {
		log.Fatal(err)
	}
	if res.Outcome != sim.OutcomeOK {
		log.Fatalf("DUE: %s", res.DUEReason)
	}
	return buf.String(), g.ReadWords(outBase, 32)
}

func main() {
	goldenTrace, golden := run(nil)

	plan := &sim.FaultPlan{
		Kind:         sim.FaultValueBit,
		Filter:       func(op isa.Op) bool { return op == isa.OpFMUL },
		TriggerIndex: 12, // lane 12 of the single FMUL
		Bit:          27, // an exponent bit: clearly visible
	}
	faultyTrace, faulty := run(plan)

	fmt.Println("golden instruction trace (one line per issued warp-instruction):")
	for _, line := range strings.Split(strings.TrimSpace(goldenTrace), "\n") {
		fmt.Println("  " + line)
	}
	if faultyTrace == goldenTrace {
		fmt.Println("\nthe dynamic instruction stream is identical under the fault:")
		fmt.Println("a pure data corruption changes values, not control flow.")
	} else {
		fmt.Println("\nthe fault diverted control flow; traces differ.")
	}

	fmt.Printf("\nfault: %s into lane %d of the FMUL output, bit %d\n",
		plan.Kind, 12, plan.Bit)
	fmt.Println("output comparison (silent data corruption, lane by lane):")
	for i := range golden {
		g := math.Float32frombits(golden[i])
		f := math.Float32frombits(faulty[i])
		marker := ""
		if golden[i] != faulty[i] {
			marker = "   <-- corrupted"
		}
		if marker != "" || i == 11 || i == 13 {
			fmt.Printf("  lane %2d: golden %12.4f   faulted %12.4f%s\n", i, g, f, marker)
		}
	}
	fmt.Println("\nexactly one lane differs: the flip propagated through the FFMA")
	fmt.Println("chain into the output — an SDC the beam would count as one event,")
	fmt.Println("with the injector alone able to say which instruction caused it.")
}
