// Mixed-precision reliability study: the Volta side of Figure 5. The
// paper's finding is that, for the same algorithm, increasing the
// operating precision increases the FIT rate — bigger functional units
// and more stored bits are bigger targets — while the AVF stays nearly
// constant (§VI). This example sweeps Hotspot, Lava, and MxM across
// FP16/FP32/FP64 with ECC disabled and prints the trend.
package main

import (
	"fmt"
	"log"
	"sort"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func main() {
	dev := device.V100()
	const trials = 200

	type variant struct {
		name  string
		build kernels.Builder
	}
	families := map[string][]variant{
		"Hotspot": {
			{"HHOTSPOT", kernels.HotspotBuilder(isa.F16)},
			{"FHOTSPOT", kernels.HotspotBuilder(isa.F32)},
			{"DHOTSPOT", kernels.HotspotBuilder(isa.F64)},
		},
		"Lava": {
			{"HLAVA", kernels.LavaBuilder(isa.F16)},
			{"FLAVA", kernels.LavaBuilder(isa.F32)},
			{"DLAVA", kernels.LavaBuilder(isa.F64)},
		},
		"MxM": {
			{"HMXM", kernels.MxMBuilder(isa.F16)},
			{"FMXM", kernels.MxMBuilder(isa.F32)},
			{"DMXM", kernels.MxMBuilder(isa.F64)},
		},
	}

	fams := make([]string, 0, len(families))
	for fam := range families {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		vs := families[fam]
		fmt.Printf("%s on %s (ECC off, %d trials each):\n", fam, dev.Name, trials)
		var prev float64
		for _, v := range vs {
			r, err := kernels.NewRunner(v.name, v.build, dev, asm.O2)
			if err != nil {
				log.Fatal(err)
			}
			res, err := beam.Run(beam.Config{ECC: false, Trials: trials, Seed: 5}, r)
			if err != nil {
				log.Fatal(err)
			}
			trend := ""
			if prev > 0 && res.SDCFIT.Rate > prev {
				trend = "  (higher precision -> higher FIT, as in the paper)"
			}
			fmt.Printf("  %-9s SDC FIT %.3f a.u.  DUE FIT %.3f a.u.%s\n",
				v.name, res.SDCFIT.Rate, res.DUEFIT.Rate, trend)
			prev = res.SDCFIT.Rate
		}
		fmt.Println()
	}
}
