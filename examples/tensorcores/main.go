// Tensor-core reliability argument of §V-B: one warp-wide HMMA performs
// the work of many scalar FMAs, so even though the MMA unit's FIT rate
// is ~9-12x an FMA's, a matrix multiplication built on tensor cores
// executes far fewer vulnerable operations and ends up *more* reliable
// than the software MxM it replaces. This example measures both.
package main

import (
	"fmt"
	"log"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/microbench"
)

func main() {
	dev := device.V100()
	const trials = 250

	// Per-unit sensitivity: the HMMA micro-benchmark versus the FFMA one.
	unitFIT := func(name string, build kernels.Builder) float64 {
		r, err := kernels.NewRunner(name, build, dev, asm.O2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := beam.Run(beam.Config{ECC: true, Trials: trials, Seed: 3}, r)
		if err != nil {
			log.Fatal(err)
		}
		return res.SDCFIT.Rate
	}
	fma := unitFIT("FFMA", microbench.ArithBuilder(isa.OpFFMA))
	mma := unitFIT("HMMA", microbench.MMABuilder(true))
	fmt.Printf("micro-benchmark SDC FIT: FFMA %.2f a.u., HMMA %.2f a.u. (%.1fx)\n",
		fma, mma, mma/fma)

	// Whole-application comparison: software FP16 MxM versus the
	// tensor-core GEMM of the same size.
	appFIT := func(name string, build kernels.Builder) float64 {
		r, err := kernels.NewRunner(name, build, dev, asm.O2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := beam.Run(beam.Config{ECC: true, Trials: trials, Seed: 3}, r)
		if err != nil {
			log.Fatal(err)
		}
		return res.SDCFIT.Rate
	}
	sw := appFIT("HMXM", kernels.MxMBuilder(isa.F16))
	tc := appFIT("HGEMM-MMA", kernels.GEMMMMABuilder(true))
	fmt.Printf("application SDC FIT (ECC on): software HMXM %.3f a.u., tensor-core HGEMM-MMA %.3f a.u.\n", sw, tc)
	if tc < sw {
		fmt.Printf("-> the tensor-core version is %.1fx more reliable despite the\n", sw/tc)
		fmt.Println("   more sensitive unit, because one MMA replaces a warp of FMAs")
		fmt.Println("   plus their fetch/decode and loop-control traffic (§V-B).")
	} else {
		fmt.Printf("-> in this configuration the tensor-core version measured %.1fx\n", tc/sw)
		fmt.Println("   the software FIT; §V-B expects the advantage to grow with the")
		fmt.Println("   MMA tile size.")
	}
}
