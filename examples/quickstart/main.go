// Quickstart: build a workload, profile it like nvprof would, inject a
// single fault the way NVBitFI would, and run a tiny beam campaign —
// the three methodologies of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/profiler"
)

func main() {
	dev := device.K40c()

	// A workload is a Builder; the Runner performs the golden run.
	runner, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		log.Fatal(err)
	}

	// Methodology 1: profiling (Table I / Figure 1).
	prof, err := profiler.Profile(runner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile of %s on %s:\n", prof.Name, dev.Name)
	fmt.Printf("  IPC %.2f, achieved occupancy %.2f, %d regs/thread, phi=%.3f\n",
		prof.IPC, prof.Occupancy, prof.RegsPerThread, prof.Phi())
	fmt.Printf("  FMA fraction of dynamic instructions: %.0f%%\n",
		100*prof.Mix[isa.ClassFMA])

	// Methodology 2: fault injection (Figure 4).
	avf, err := faultinj.Run(faultinj.Config{
		Tool: faultinj.NVBitFI, TotalFaults: 150, Seed: 42,
	}, "FMXM", kernels.MxMBuilder(isa.F32), dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNVBitFI campaign: %d faults -> %d SDC, %d DUE, %d masked\n",
		avf.Injected, avf.SDC, avf.DUE, avf.Masked)
	fmt.Printf("  SDC AVF %.3f [%.3f, %.3f]\n",
		avf.SDCAVF.P, avf.SDCAVF.Lower, avf.SDCAVF.Upper)

	// Methodology 3: beam experiment (Figure 5).
	res, err := beam.Run(beam.Config{ECC: false, Trials: 120, Seed: 42}, runner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbeam campaign (ECC off): SDC FIT %.3f a.u., DUE FIT %.3f a.u.\n",
		res.SDCFIT.Rate, res.DUEFIT.Rate)
	for src := beam.Source(0); src < beam.SrcCount; src++ {
		s := res.BySource[src]
		fmt.Printf("  %-16s %3d strikes -> %2d SDC, %2d DUE\n", src, s.Strikes, s.SDC, s.DUE)
	}
}
